package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"graphzeppelin/internal/core"
	"graphzeppelin/internal/gzserve"
	"graphzeppelin/internal/kron"
)

// DistServe measures the networked distributed-ingestion service: a
// coordinator plus K workers on localhost, the full Kronecker stream
// driven through the coordinator's framed HTTP ingest endpoint, a
// checkpoint pull + merge (refresh), and a global connectivity answer
// compared against a single engine that saw the whole stream. With
// Options.GzserveBin set, every role runs as its own gzserve process —
// the true multi-process topology CI exercises; otherwise the servers
// run in-process over real loopback HTTP.
func DistServe(o Options) (*Table, error) {
	o = o.withDefaults()
	scale := o.MaxScale - 1
	if scale < 8 {
		scale = 8
	}
	res := KronStream(scale, o.Seed)
	mode := "in-process servers"
	if o.GzserveBin != "" {
		mode = fmt.Sprintf("processes via %s", o.GzserveBin)
	}
	t := &Table{
		ID:     "distserve",
		Title:  fmt.Sprintf("Networked distributed ingestion, gzserve cluster on localhost (kron%d, %s)", scale, mode),
		Header: []string{"workers", "ingest rate", "refresh", "merged updates", "batches", "retries", "dups", "vs reference"},
		Notes: []string{
			"stream driven through the coordinator's /v1/ingest (GZW1 frames over HTTP), node-range partitioned to workers",
			"ingest rate = updates/sec of send+drain wall time, including partitioning, framing and acks",
			"refresh = POST /v1/refresh wall time: drain windows, pull every worker's GZE3 checkpoint, MergeCheckpoint into the aggregator",
			"vs reference = coordinator's component partition equals a single engine over the whole stream",
		},
	}

	ref, _, err := runGZ(res, core.Config{Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	refRep, refCount, err := ref.ConnectedComponents()
	ref.Close()
	if err != nil {
		return nil, err
	}

	for _, k := range []int{1, 2, 4} {
		row, err := runDistServeTrial(res, o, k, refRep, refCount)
		if err != nil {
			return nil, fmt.Errorf("distserve: workers=%d: %w", k, err)
		}
		t.Rows = append(t.Rows, row)
		o.logf("distserve: workers=%d done (%d updates)", k, len(res.Updates))
	}
	return t, nil
}

// distCluster abstracts the two launch modes behind the coordinator URL.
type distCluster interface {
	coordinatorURL() string
	shutdown() error
}

func runDistServeTrial(res kron.Result, o Options, k int, refRep []uint32, refCount int) ([]string, error) {
	var cl distCluster
	var err error
	if o.GzserveBin != "" {
		cl, err = launchProcCluster(o, res.NumNodes, k)
	} else {
		cl, err = launchInprocCluster(o, res.NumNodes, k)
	}
	if err != nil {
		return nil, err
	}
	defer cl.shutdown()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	drv := gzserve.NewClient(cl.coordinatorURL(), gzserve.ClientConfig{MaxInFlight: 4})
	if _, err := drv.Info(ctx); err != nil {
		return nil, fmt.Errorf("coordinator handshake: %w", err)
	}

	const batch = 2048
	start := time.Now()
	for off := 0; off < len(res.Updates); off += batch {
		end := off + batch
		if end > len(res.Updates) {
			end = len(res.Updates)
		}
		drv.SendAsync(ctx, res.Updates[off:end])
	}
	if err := drv.Drain(); err != nil {
		return nil, err
	}
	ingestDur := time.Since(start)

	refreshStart := time.Now()
	resp, err := http.Post(cl.coordinatorURL()+gzserve.PathRefresh, "application/json", nil)
	if err != nil {
		return nil, err
	}
	var refresh struct {
		MergedUpdates uint64 `json:"merged_updates"`
	}
	err = json.NewDecoder(resp.Body).Decode(&refresh)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("refresh: %w", err)
	}
	refreshDur := time.Since(refreshStart)

	resp, err = http.Get(cl.coordinatorURL() + gzserve.PathComponents)
	if err != nil {
		return nil, err
	}
	var comp struct {
		Count int      `json:"count"`
		Rep   []uint32 `json:"rep"`
	}
	err = json.NewDecoder(resp.Body).Decode(&comp)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("components: %w", err)
	}

	resp, err = http.Get(cl.coordinatorURL() + gzserve.PathStatsz)
	if err != nil {
		return nil, err
	}
	var st gzserve.CoordStats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("statsz: %w", err)
	}
	var batches, retries, dups uint64
	for _, w := range st.Workers {
		batches += w.Batches
		retries += w.Retries
		dups += w.Duplicates
	}

	match := "MATCH"
	if comp.Count != refCount || !samePartition(comp.Rep, refRep) {
		match = "MISMATCH"
	}
	if refresh.MergedUpdates != uint64(len(res.Updates)) {
		match = fmt.Sprintf("LOST UPDATES (%d/%d)", refresh.MergedUpdates, len(res.Updates))
	}
	return []string{
		fmt.Sprintf("%d", k),
		rate(len(res.Updates), ingestDur),
		fmt.Sprintf("%.1f ms", float64(refreshDur.Nanoseconds())/1e6),
		fmt.Sprintf("%d", refresh.MergedUpdates),
		fmt.Sprintf("%d", batches),
		fmt.Sprintf("%d", retries),
		fmt.Sprintf("%d", dups),
		match,
	}, nil
}

// ---- in-process launch: real loopback HTTP, one process ----

type inprocCluster struct {
	workers  []*gzserve.Worker
	servers  []*http.Server
	co       *gzserve.Coordinator
	coSrv    *http.Server
	coordURL string
}

func serveOn(h http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return srv, "http://" + ln.Addr().String(), nil
}

func launchInprocCluster(o Options, numNodes uint32, k int) (*inprocCluster, error) {
	c := &inprocCluster{}
	part, err := gzserve.NewRangePartitioner(numNodes, k)
	if err != nil {
		return nil, err
	}
	var addrs []string
	for i := 0; i < k; i++ {
		lo, hi := part.Range(i)
		wk, werr := gzserve.NewWorker(core.Config{NumNodes: numNodes, Seed: o.Seed}, lo, hi)
		if werr != nil {
			c.shutdown()
			return nil, werr
		}
		srv, url, serr := serveOn(wk.Handler())
		if serr != nil {
			wk.Close()
			c.shutdown()
			return nil, serr
		}
		c.workers = append(c.workers, wk)
		c.servers = append(c.servers, srv)
		addrs = append(addrs, url)
	}
	co, err := gzserve.NewCoordinator(gzserve.CoordinatorConfig{
		Engine:  core.Config{NumNodes: numNodes, Seed: o.Seed},
		Workers: addrs,
	})
	if err != nil {
		c.shutdown()
		return nil, err
	}
	c.co = co
	srv, url, err := serveOn(co.Handler())
	if err != nil {
		c.shutdown()
		return nil, err
	}
	c.coSrv, c.coordURL = srv, url
	return c, nil
}

func (c *inprocCluster) coordinatorURL() string { return c.coordURL }

func (c *inprocCluster) shutdown() error {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var first error
	if c.coSrv != nil {
		c.coSrv.Shutdown(ctx)
	}
	if c.co != nil {
		if err := c.co.Close(ctx); err != nil && first == nil {
			first = err
		}
	}
	for _, srv := range c.servers {
		srv.Shutdown(ctx)
	}
	for _, wk := range c.workers {
		if err := wk.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ---- multi-process launch: one gzserve process per role ----

type procCluster struct {
	procs    []*exec.Cmd
	dir      string
	coordURL string
}

// launchProc starts one gzserve process and waits for its addr file.
func launchProc(o Options, bin, dir, name string, args []string) (*exec.Cmd, string, error) {
	addrFile := filepath.Join(dir, name+".addr")
	cmd := exec.Command(bin, append(args, "-listen", "127.0.0.1:0", "-addr-file", addrFile)...)
	if o.Verbose {
		cmd.Stderr = o.Progress
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return cmd, "http://" + string(b), nil
		}
		if cmd.ProcessState != nil {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	return nil, "", fmt.Errorf("gzserve %s did not publish its address", name)
}

func launchProcCluster(o Options, numNodes uint32, k int) (*procCluster, error) {
	dir, err := os.MkdirTemp("", "distserve")
	if err != nil {
		return nil, err
	}
	c := &procCluster{dir: dir}
	nodes := fmt.Sprintf("%d", numNodes)
	seed := fmt.Sprintf("%d", o.Seed)
	var addrs string
	for i := 0; i < k; i++ {
		cmd, url, err := launchProc(o, o.GzserveBin, dir, fmt.Sprintf("worker%d", i), []string{
			"-mode", "worker", "-nodes", nodes, "-seed", seed,
			"-worker-index", fmt.Sprintf("%d", i), "-worker-count", fmt.Sprintf("%d", k),
		})
		if err != nil {
			c.shutdown()
			return nil, err
		}
		c.procs = append(c.procs, cmd)
		if i > 0 {
			addrs += ","
		}
		addrs += url
	}
	cmd, url, err := launchProc(o, o.GzserveBin, dir, "coordinator", []string{
		"-mode", "coordinator", "-nodes", nodes, "-seed", seed, "-workers", addrs,
	})
	if err != nil {
		c.shutdown()
		return nil, err
	}
	c.procs = append(c.procs, cmd)
	c.coordURL = url
	return c, nil
}

func (c *procCluster) coordinatorURL() string { return c.coordURL }

// shutdown SIGTERMs the coordinator first (it drains and ships a final
// merge), then the workers, reaping every process.
func (c *procCluster) shutdown() error {
	var first error
	for i := len(c.procs) - 1; i >= 0; i-- {
		p := c.procs[i]
		p.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- p.Wait() }()
		select {
		case err := <-done:
			if err != nil && first == nil {
				first = err
			}
		case <-time.After(20 * time.Second):
			p.Process.Kill()
			<-done
			if first == nil {
				first = fmt.Errorf("gzserve process %d needed SIGKILL", i)
			}
		}
	}
	os.RemoveAll(c.dir)
	return first
}
