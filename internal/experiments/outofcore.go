package experiments

import (
	"fmt"
	"os"
	"time"

	"graphzeppelin/internal/core"
)

// Fig12 regenerates Figure 12: system behaviour when data structures live
// on disk. The paper RAM-limits all systems with cgroups; offline we run
// GraphZeppelin's genuine out-of-core modes (sketches on a block device,
// gutter-tree or leaf-only buffering) and, for the explicit baselines,
// report the modeled block-I/O count of Observation 1 — each update
// touches two random adjacency locations, so out-of-core they pay Ω(1)
// I/Os per update, which is why the paper measures them collapsing by two
// orders of magnitude.
func Fig12(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:    "fig12",
		Title: "Out-of-core ingestion (sketches on block device) and CC query time",
		Header: []string{"dataset", "GZ gutter-tree rate", "GZ leaf-only rate", "GZ in-RAM rate",
			"disk/RAM", "CC time (tree)", "GZ block I/Os", "baseline modeled I/Os"},
		Notes: []string{
			"expected shape: disk rate within ~29% of RAM rate; GZ block I/Os orders of",
			"magnitude below the per-update Ω(N) the explicit baselines require out-of-core",
		},
	}
	for scale := 8; scale <= o.MaxScale; scale++ {
		res := KronStream(scale, o.Seed)
		n := len(res.Updates)
		dir, err := os.MkdirTemp("", "gz-fig12-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)

		engTree, treeDur, err := runGZ(res, core.Config{
			Seed: o.Seed, Workers: 2, Dir: dir,
			SketchesOnDisk: true, Buffering: core.BufferTree,
		})
		if err != nil {
			return nil, err
		}
		qStart := time.Now()
		if _, err := engTree.SpanningForest(); err != nil {
			engTree.Close()
			return nil, err
		}
		ccDur := time.Since(qStart)
		stTree := engTree.Stats()
		engTree.Close()

		engLeaf, leafDur, err := runGZ(res, core.Config{
			Seed: o.Seed, Workers: 2, Dir: dir,
			SketchesOnDisk: true, Buffering: core.BufferLeaf,
		})
		if err != nil {
			return nil, err
		}
		engLeaf.Close()

		engRAM, ramDur, err := runGZ(res, core.Config{Seed: o.Seed, Workers: 2})
		if err != nil {
			return nil, err
		}
		engRAM.Close()

		gzIOs := stTree.SketchIO.TotalBlocks() + stTree.BufferIO.TotalBlocks()
		// Observation 1: an explicit out-of-core system pays >= 1 block
		// I/O per update endpoint touched (2 per update), unbatchable
		// because updates land at hash-random adjacency locations.
		baselineIOs := uint64(2 * n)

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("kron%d", scale),
			rate(n, treeDur),
			rate(n, leafDur),
			rate(n, ramDur),
			fmt.Sprintf("%.0f%%", 100*treeDur.Seconds()/ramDur.Seconds()),
			fmt.Sprintf("%.3fs", ccDur.Seconds()),
			fmt.Sprintf("%d", gzIOs),
			fmt.Sprintf("%d", baselineIOs),
		})
		o.logf("fig12: kron%d done", scale)
	}
	return t, nil
}

// Fig15 regenerates Figure 15: ingestion rate as a function of the gutter
// size factor f, with sketches in RAM and on the block device.
func Fig15(o Options) (*Table, error) {
	o = o.withDefaults()
	scale := o.MaxScale - 1
	if scale < 8 {
		scale = 8
	}
	res := KronStream(scale, o.Seed)
	n := len(res.Updates)
	t := &Table{
		ID:     "fig15",
		Title:  fmt.Sprintf("Gutter size factor f vs ingestion rate (kron%d)", scale),
		Header: []string{"f", "in-RAM rate", "on-disk rate"},
		Notes: []string{
			"expected shape: rate climbs steeply with f then plateaus;",
			"the on-disk curve needs larger f to amortize sketch fetches",
		},
	}
	for _, f := range []float64{0.0001, 0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0} {
		engRAM, ramDur, err := runGZ(res, core.Config{Seed: o.Seed, Workers: 2, BufferFactor: f})
		if err != nil {
			return nil, err
		}
		engRAM.Close()
		engDisk, diskDur, err := runGZ(res, core.Config{
			Seed: o.Seed, Workers: 2, BufferFactor: f, SketchesOnDisk: true,
		})
		if err != nil {
			return nil, err
		}
		engDisk.Close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", f),
			rate(n, ramDur),
			rate(n, diskDur),
		})
		o.logf("fig15: f=%g done", f)
	}
	return t, nil
}

// Fig14 regenerates Figure 14: ingestion rate as Graph Workers increase.
// On a single-core host the curve flattens at 1-2 workers (DESIGN.md §3);
// the experiment still demonstrates that adding workers never corrupts
// results and reports the sweep for multi-core machines.
func Fig14(o Options) (*Table, error) {
	o = o.withDefaults()
	scale := o.MaxScale - 1
	if scale < 8 {
		scale = 8
	}
	res := KronStream(scale, o.Seed)
	n := len(res.Updates)
	t := &Table{
		ID:     "fig14",
		Title:  fmt.Sprintf("Ingestion rate vs Graph Workers (kron%d)", scale),
		Header: []string{"workers", "rate", "speedup vs 1"},
		Notes: []string{
			"expected shape: near-linear scaling up to the core count",
			"(flat on a single-vCPU host; see DESIGN.md §3)",
		},
	}
	var base time.Duration
	for _, w := range []int{1, 2, 4, 8, 16} {
		eng, dur, err := runGZ(res, core.Config{Seed: o.Seed, Workers: w})
		if err != nil {
			return nil, err
		}
		eng.Close()
		if w == 1 {
			base = dur
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w),
			rate(n, dur),
			fmt.Sprintf("%.2fx", base.Seconds()/dur.Seconds()),
		})
		o.logf("fig14: workers=%d done", w)
	}
	return t, nil
}
