package experiments

import (
	"fmt"
	"sync"
	"time"

	"graphzeppelin"
	"graphzeppelin/internal/kron"
)

// ProducerSweep measures ingestion rate as the number of concurrent
// producers grows, each producer driving its own Ingestor session over a
// shared Graph. It is the system-level demonstration of the
// multi-producer API: with one producer it measures the batch path's
// per-update cost; with several it measures how far the striped gutters,
// per-shard push mutexes and internally-parallel apply path scale on this
// host (bounded by GOMAXPROCS — single-vCPU hosts show hand-off overhead,
// not speedup).
func ProducerSweep(o Options) (*Table, error) {
	o = o.withDefaults()
	scale := o.MaxScale - 1
	if scale < 8 {
		scale = 8
	}
	res := KronStream(scale, o.Seed)
	n := len(res.Updates)
	const shards = 4
	t := &Table{
		ID:     "producers",
		Title:  fmt.Sprintf("Ingestion rate vs concurrent producers (kron%d, shards=%d)", scale, shards),
		Header: []string{"producers", "rate", "speedup vs 1"},
		Notes: []string{
			"each producer drives a private Ingestor session; the Graph is shared",
			"updates are pre-partitioned round-robin, so producers never coordinate",
		},
	}
	var base time.Duration
	for _, p := range []int{1, 2, 4, 8} {
		dur, err := runProducers(res, p, shards, o.Seed)
		if err != nil {
			return nil, err
		}
		if p == 1 {
			base = dur
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			rate(n, dur),
			fmt.Sprintf("%.2fx", base.Seconds()/dur.Seconds()),
		})
		o.logf("producers: producers=%d done", p)
	}
	return t, nil
}

// runProducers ingests res with p concurrent Ingestor sessions and
// returns the wall-clock ingestion time (including the final drain, so
// every producer's updates are fully applied).
func runProducers(res kron.Result, p, shards int, seed uint64) (time.Duration, error) {
	g, err := graphzeppelin.New(res.NumNodes,
		graphzeppelin.WithSeed(seed),
		graphzeppelin.WithShards(shards),
	)
	if err != nil {
		return 0, err
	}
	defer g.Close()

	// Pre-partition round-robin so the measured region contains no
	// coordination between producers.
	parts := make([][]graphzeppelin.Update, p)
	for i, u := range res.Updates {
		parts[i%p] = append(parts[i%p], u)
	}

	errs := make([]error, p)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ing, err := g.NewIngestor()
			if err != nil {
				errs[i] = err
				return
			}
			for _, u := range parts[i] {
				if err := ing.Apply(u); err != nil {
					errs[i] = err
					return
				}
			}
			errs[i] = ing.Close()
		}(i)
	}
	wg.Wait()
	if err := g.Flush(); err != nil {
		return 0, err
	}
	dur := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return dur, nil
}
