// Package experiments implements the paper's evaluation section: one
// function per table/figure, each regenerating the corresponding rows on
// this machine's substrate. The cmd/gzbench binary exposes them behind
// -exp flags and the repository's benchmarks reuse the same workloads, so
// EXPERIMENTS.md can be reproduced end to end. Scales default to sizes
// that finish on a small machine and grow via Scale options; see
// DESIGN.md §3 for the hardware substitutions.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"graphzeppelin/internal/kron"
)

// Table is a printable experiment result.
type Table struct {
	ID     string // e.g. "fig4"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Print renders the table in aligned plain text.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Options scale the experiments. Zero values choose laptop-scale defaults.
type Options struct {
	// MaxScale is the largest Kronecker scale used by the system
	// experiments (default 10; the paper's kron13..kron18 correspond to
	// scales 13-18 and are reachable on larger machines).
	MaxScale int
	// Trials is the number of correctness checks per dataset for the
	// reliability experiment (paper: 1000; default 25).
	Trials int
	// Seed drives all generators.
	Seed uint64
	// Verbose writes progress lines to Progress while running.
	Verbose  bool
	Progress io.Writer
	// GzserveBin, when set, makes DistServe launch each cluster role as
	// its own gzserve process on localhost (the true multi-process
	// topology); empty runs the servers in-process over loopback HTTP.
	GzserveBin string
}

func (o Options) withDefaults() Options {
	if o.MaxScale == 0 {
		o.MaxScale = 10
	}
	if o.MaxScale < 6 {
		o.MaxScale = 6
	}
	if o.Trials == 0 {
		o.Trials = 25
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Progress == nil {
		o.Progress = io.Discard
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Verbose {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// streamCache memoizes generated streams within one process so multiple
// experiments over the same dataset do not regenerate it.
var streamCache = map[string]kron.Result{}

// KronStream returns the converted stream for a dense Kronecker graph at
// the given scale, cached per (scale, seed).
func KronStream(scale int, seed uint64) kron.Result {
	key := fmt.Sprintf("kron/%d/%d", scale, seed)
	if r, ok := streamCache[key]; ok {
		return r
	}
	edges := kron.DenseKronecker(scale, seed)
	r := kron.ToStream(edges, 1<<scale, kron.StreamOptions{}, seed+1)
	streamCache[key] = r
	return r
}

// rate formats an updates/second figure the way the paper's tables do.
func rate(updates int, d time.Duration) string {
	if d <= 0 {
		return "inf"
	}
	r := float64(updates) / d.Seconds()
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.2fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fK", r/1e3)
	default:
		return fmt.Sprintf("%.0f", r)
	}
}

// mib formats a byte count in MiB.
func mib(b int64) string { return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20)) }
