package experiments

import (
	"fmt"
	"time"

	"graphzeppelin/internal/core"
	"graphzeppelin/internal/kron"
	"graphzeppelin/internal/stream"
)

// queryLatencies ingests res into eng, issuing a connectivity query every
// 10% of the stream, and returns the per-query latencies plus the overall
// ingestion duration (query time excluded).
func queryLatencies(res kron.Result, cfg core.Config) ([]time.Duration, time.Duration, error) {
	cfg.NumNodes = res.NumNodes
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, 0, err
	}
	defer eng.Close()
	every := len(res.Updates) / 10
	if every == 0 {
		every = 1
	}
	var lats []time.Duration
	var ingest time.Duration
	chunkStart := time.Now()
	for i, u := range res.Updates {
		if err := eng.Update(u); err != nil {
			return nil, 0, err
		}
		if (i+1)%every == 0 {
			ingest += time.Since(chunkStart)
			qs := time.Now()
			if _, err := eng.SpanningForest(); err != nil {
				return nil, 0, err
			}
			lats = append(lats, time.Since(qs))
			chunkStart = time.Now()
		}
	}
	ingest += time.Since(chunkStart)
	return lats, ingest, nil
}

// baselineQueryLatencies does the same for an explicit baseline.
func baselineQueryLatencies(res kron.Result, newSys func() interface {
	Apply(stream.Update)
	ConnectedComponents() ([]uint32, int)
}) []time.Duration {
	g := newSys()
	every := len(res.Updates) / 10
	if every == 0 {
		every = 1
	}
	var lats []time.Duration
	for i, u := range res.Updates {
		g.Apply(u)
		if (i+1)%every == 0 {
			qs := time.Now()
			g.ConnectedComponents()
			lats = append(lats, time.Since(qs))
		}
	}
	return lats
}

// Fig16 regenerates Figure 16: query latency at every 10% of the stream
// for GraphZeppelin (small 100-update buffers, per the paper) against the
// explicit baselines, in-RAM (16a) and with GZ sketches on the block
// device (16b).
func Fig16(o Options) (*Table, error) {
	o = o.withDefaults()
	scale := o.MaxScale - 1
	if scale < 8 {
		scale = 8
	}
	res := KronStream(scale, o.Seed)
	t := &Table{
		ID:     "fig16",
		Title:  fmt.Sprintf("Query latency every 10%% of the stream (kron%d)", scale),
		Header: []string{"progress", "GZ in-RAM", "GZ on-disk", "Aspen-like", "Terrace-like"},
		Notes: []string{
			"expected shape: GZ latency ~flat in stream progress (density);",
			"explicit baselines grow as the graph densifies",
		},
	}

	// The paper uses tiny 400-byte buffers (≈100 updates) for this
	// experiment so queries are not dominated by buffer flushing.
	smallBuffers := func(onDisk bool) core.Config {
		return core.Config{
			Seed: o.Seed, Workers: 2,
			BufferFactor:   0.002,
			SketchesOnDisk: onDisk,
		}
	}
	gzRAM, _, err := queryLatencies(res, smallBuffers(false))
	if err != nil {
		return nil, err
	}
	o.logf("fig16: GZ in-RAM done")
	gzDisk, _, err := queryLatencies(res, smallBuffers(true))
	if err != nil {
		return nil, err
	}
	o.logf("fig16: GZ on-disk done")
	asp := baselineQueryLatencies(res, func() interface {
		Apply(stream.Update)
		ConnectedComponents() ([]uint32, int)
	} {
		return newAspenAdapter(res.NumNodes)
	})
	ter := baselineQueryLatencies(res, func() interface {
		Apply(stream.Update)
		ConnectedComponents() ([]uint32, int)
	} {
		return newTerraceAdapter(res.NumNodes)
	})
	o.logf("fig16: baselines done")

	for i := 0; i < len(gzRAM); i++ {
		row := []string{fmt.Sprintf("%d%%", (i+1)*10)}
		for _, lats := range [][]time.Duration{gzRAM, gzDisk, asp, ter} {
			if i < len(lats) {
				row = append(row, fmt.Sprintf("%.1fms", float64(lats[i].Microseconds())/1000))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
