package experiments

import (
	"fmt"
	"time"

	"graphzeppelin/internal/core"
	"graphzeppelin/internal/kron"
	"graphzeppelin/internal/stream"
)

// queryLatencies ingests res into eng, issuing a connectivity query every
// 10% of the stream, and returns the per-query latencies plus the overall
// ingestion duration (query time excluded).
func queryLatencies(res kron.Result, cfg core.Config) ([]time.Duration, time.Duration, error) {
	cfg.NumNodes = res.NumNodes
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, 0, err
	}
	defer eng.Close()
	every := len(res.Updates) / 10
	if every == 0 {
		every = 1
	}
	var lats []time.Duration
	var ingest time.Duration
	chunkStart := time.Now()
	for i, u := range res.Updates {
		if err := eng.Update(u); err != nil {
			return nil, 0, err
		}
		if (i+1)%every == 0 {
			// Drain before starting the query timer: flushing the gutters
			// is ingestion work the engine deferred, and the explicit
			// baselines carry no buffer, so charging it to query latency
			// would skew the Figure 16 comparison.
			if err := eng.Drain(); err != nil {
				return nil, 0, err
			}
			ingest += time.Since(chunkStart)
			qs := time.Now()
			if _, err := eng.SpanningForest(); err != nil {
				return nil, 0, err
			}
			lats = append(lats, time.Since(qs))
			chunkStart = time.Now()
		}
	}
	ingest += time.Since(chunkStart)
	return lats, ingest, nil
}

// baselineQueryLatencies does the same for an explicit baseline.
func baselineQueryLatencies(res kron.Result, newSys func() interface {
	Apply(stream.Update)
	ConnectedComponents() ([]uint32, int)
}) []time.Duration {
	g := newSys()
	every := len(res.Updates) / 10
	if every == 0 {
		every = 1
	}
	var lats []time.Duration
	for i, u := range res.Updates {
		g.Apply(u)
		if (i+1)%every == 0 {
			qs := time.Now()
			g.ConnectedComponents()
			lats = append(lats, time.Since(qs))
		}
	}
	return lats
}

// Fig16 regenerates Figure 16: query latency at every 10% of the stream
// for GraphZeppelin (small 100-update buffers, per the paper) against the
// explicit baselines, in-RAM (16a) and with GZ sketches on the block
// device (16b).
func Fig16(o Options) (*Table, error) {
	o = o.withDefaults()
	scale := o.MaxScale - 1
	if scale < 8 {
		scale = 8
	}
	res := KronStream(scale, o.Seed)
	t := &Table{
		ID:     "fig16",
		Title:  fmt.Sprintf("Query latency every 10%% of the stream (kron%d)", scale),
		Header: []string{"progress", "GZ in-RAM", "GZ on-disk", "Aspen-like", "Terrace-like"},
		Notes: []string{
			"expected shape: GZ latency ~flat in stream progress (density);",
			"explicit baselines grow as the graph densifies",
		},
	}

	// The paper uses tiny 400-byte buffers (≈100 updates) for this
	// experiment so queries are not dominated by buffer flushing.
	smallBuffers := func(onDisk bool) core.Config {
		return core.Config{
			Seed: o.Seed, Workers: 2,
			BufferFactor:   0.002,
			SketchesOnDisk: onDisk,
		}
	}
	gzRAM, _, err := queryLatencies(res, smallBuffers(false))
	if err != nil {
		return nil, err
	}
	o.logf("fig16: GZ in-RAM done")
	gzDisk, _, err := queryLatencies(res, smallBuffers(true))
	if err != nil {
		return nil, err
	}
	o.logf("fig16: GZ on-disk done")
	asp := baselineQueryLatencies(res, func() interface {
		Apply(stream.Update)
		ConnectedComponents() ([]uint32, int)
	} {
		return newAspenAdapter(res.NumNodes)
	})
	ter := baselineQueryLatencies(res, func() interface {
		Apply(stream.Update)
		ConnectedComponents() ([]uint32, int)
	} {
		return newTerraceAdapter(res.NumNodes)
	})
	o.logf("fig16: baselines done")

	for i := 0; i < len(gzRAM); i++ {
		row := []string{fmt.Sprintf("%d%%", (i+1)*10)}
		for _, lats := range [][]time.Duration{gzRAM, gzDisk, asp, ter} {
			if i < len(lats) {
				row = append(row, fmt.Sprintf("%.1fms", float64(lats[i].Microseconds())/1000))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// QuerySweep characterizes the query subsystem on a kron stream: cold
// full-query latency (cache invalidated by a toggle before each run,
// delta maintenance disabled so the run really is from scratch),
// incremental-query latency at a sweep of dirty fractions, epoch-cached
// point-query latency through Connected and ConnectedMany, and the
// disk-mode scan's I/O — sequential range reads per full query against
// the NumNodes point reads of a per-node scan.
func QuerySweep(o Options) (*Table, error) {
	o = o.withDefaults()
	scale := o.MaxScale - 1
	if scale < 8 {
		scale = 8
	}
	res := KronStream(scale, o.Seed)
	t := &Table{
		ID:     "query",
		Title:  fmt.Sprintf("Query subsystem: cold vs cached vs incremental vs on-disk scan (kron%d)", scale),
		Header: []string{"metric", "deltafrac", "value"},
		Notes: []string{
			"cached point queries run O(1) off the last full query's representatives;",
			"incremental queries re-solve only the components dirtied since the cached forest;",
			"disk-mode full queries scan live slots sequentially (Lemma 5), not per node",
		},
	}
	const trials = 5
	const pairs = 4096

	run := func(onDisk bool) (cold time.Duration, readOps, readBlocks uint64, err error) {
		cfg := core.Config{NumNodes: res.NumNodes, Seed: o.Seed, Workers: 2, SketchesOnDisk: onDisk,
			NoDeltaQuery: true}
		eng, err := core.NewEngine(cfg)
		if err != nil {
			return 0, 0, 0, err
		}
		defer eng.Close()
		for _, u := range res.Updates {
			if err := eng.Update(u); err != nil {
				return 0, 0, 0, err
			}
		}
		var total time.Duration
		readOps, readBlocks = 0, 0
		for i := 0; i < trials; i++ {
			// Toggle one edge so every trial is a genuine cold query, and
			// drain before snapshotting stats so the toggle's sketch-apply
			// I/O stays out of the measured query delta.
			if err := eng.InsertEdge(0, 1); err != nil {
				return 0, 0, 0, err
			}
			if err := eng.Drain(); err != nil {
				return 0, 0, 0, err
			}
			before := eng.Stats().SketchIO
			start := time.Now()
			if _, err := eng.SpanningForest(); err != nil {
				return 0, 0, 0, err
			}
			total += time.Since(start)
			after := eng.Stats().SketchIO
			readOps += after.ReadOps - before.ReadOps
			readBlocks += after.ReadBlocks - before.ReadBlocks
		}
		return total / trials, readOps / trials, readBlocks / trials, nil
	}

	coldRAM, _, _, err := run(false)
	if err != nil {
		return nil, err
	}
	o.logf("query: RAM cold queries done")
	coldDisk, readOps, readBlocks, err := run(true)
	if err != nil {
		return nil, err
	}
	o.logf("query: disk cold queries done")

	// Cached point queries on a quiet RAM engine.
	eng, err := core.NewEngine(core.Config{NumNodes: res.NumNodes, Seed: o.Seed, Workers: 2})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	for _, u := range res.Updates {
		if err := eng.Update(u); err != nil {
			return nil, err
		}
	}
	if _, err := eng.SpanningForest(); err != nil { // warm the cache
		return nil, err
	}
	batch := stream.RandomPairs(res.NumNodes, pairs, o.Seed)
	start := time.Now()
	for _, p := range batch {
		if _, err := eng.Connected(p.U, p.V); err != nil {
			return nil, err
		}
	}
	perConnected := time.Since(start) / pairs
	start = time.Now()
	if _, err := eng.ConnectedMany(batch); err != nil {
		return nil, err
	}
	manyTotal := time.Since(start)
	hits := eng.Stats().QueryCacheHits
	o.logf("query: cached point queries done")

	// Incremental sweep: dirty a controlled fraction of nodes (each toggled
	// edge (u, u+1) over fresh node pairs dirties exactly two nodes), then
	// time the next query — the delta path reuses the cached forest and
	// re-solves only the affected components. The engine above already
	// holds a warm cache; the cursor walks disjoint even-aligned pairs so
	// successive fractions never cancel each other's toggles.
	n := res.NumNodes
	cursor := uint32(0)
	deltaRows := [][]string{}
	for _, frac := range []float64{0.001, 0.01, 0.1} {
		k := int(frac * float64(n) / 2)
		if k < 1 {
			k = 1
		}
		var total time.Duration
		for i := 0; i < trials; i++ {
			for j := 0; j < k; j++ {
				u := cursor % (n - 1)
				u -= u % 2
				cursor += 2
				if err := eng.InsertEdge(u, u+1); err != nil {
					return nil, err
				}
			}
			if err := eng.Drain(); err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := eng.SpanningForest(); err != nil {
				return nil, err
			}
			total += time.Since(start)
		}
		deltaRows = append(deltaRows, []string{
			"incremental query, RAM",
			fmt.Sprintf("%.2g", float64(2*k)/float64(n)),
			fmt.Sprintf("%.3fms", float64((total / trials).Microseconds())/1000),
		})
	}
	dst := eng.Stats()
	o.logf("query: incremental sweep done (%d delta queries, %d fallbacks)",
		dst.DeltaQueries, dst.DeltaFallbacks)

	t.Rows = append(t.Rows,
		[]string{"cold full query, RAM", "-", fmt.Sprintf("%.3fms", float64(coldRAM.Microseconds())/1000)},
		[]string{"cold full query, on-disk", "-", fmt.Sprintf("%.3fms", float64(coldDisk.Microseconds())/1000)},
		[]string{"disk read ops per cold query", "-", fmt.Sprintf("%d (vs %d per-node point reads)", readOps, res.NumNodes)},
		[]string{"disk read blocks per cold query", "-", fmt.Sprintf("%d", readBlocks)},
	)
	t.Rows = append(t.Rows, deltaRows...)
	t.Rows = append(t.Rows,
		[]string{fmt.Sprintf("cached Connected × %d", pairs), "-", fmt.Sprintf("%dns/query", perConnected.Nanoseconds())},
		[]string{fmt.Sprintf("cached ConnectedMany(%d)", pairs), "-", fmt.Sprintf("%.3fms total", float64(manyTotal.Microseconds())/1000)},
		[]string{"query cache hits", "-", fmt.Sprintf("%d", hits)},
		[]string{"delta queries / fallbacks", "-", fmt.Sprintf("%d / %d", dst.DeltaQueries, dst.DeltaFallbacks)},
	)
	return t, nil
}
