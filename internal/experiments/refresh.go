package experiments

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"graphzeppelin/internal/core"
	"graphzeppelin/internal/gzserve"
	"graphzeppelin/internal/kron"
)

// RefreshSweep measures what delta checkpoints buy the coordinator's
// refresh path: after a bulk load and a small trickle of further
// updates, a full refresh re-ships and re-merges every worker's entire
// checkpoint while a delta refresh ships only the nodes the trickle
// touched and patches them into the live merged view. The sweep runs
// trickle fraction x worker count; for each cell two coordinators over
// the same workers refresh the identical cut — one with delta refresh,
// one forced full — and the row records the shipped bytes, the refresh
// wall time, and whether both views (and a single reference engine that
// saw the whole stream) agree on the component partition.
func RefreshSweep(o Options) (*Table, error) {
	o = o.withDefaults()
	scale := o.MaxScale - 1
	if scale < 8 {
		scale = 8
	}
	res := KronStream(scale, o.Seed)
	t := &Table{
		ID:    "refresh",
		Title: fmt.Sprintf("Delta vs full coordinator refresh after a trickle (kron%d, in-process cluster)", scale),
		Header: []string{"workers", "trickle", "full bytes", "delta bytes", "bytes ratio",
			"full refresh", "delta refresh", "speedup", "vs reference"},
		Notes: []string{
			"trickle = share of the node universe touched by updates ingested after the previous refresh",
			"full = coordinator with NoDeltaRefresh: pulls every worker's complete checkpoint and rebuilds the merged view",
			"delta = default coordinator: pulls ?since= deltas and patches only the changed node sketches in place",
			"both coordinators refresh the same worker cut; vs reference = both component partitions equal a single engine over the whole stream",
		},
	}
	for _, k := range []int{1, 2, 4} {
		for _, frac := range []float64{0.01, 0.05} {
			row, err := runRefreshTrial(res, o, k, frac)
			if err != nil {
				return nil, fmt.Errorf("refresh: workers=%d trickle=%.0f%%: %w", k, frac*100, err)
			}
			t.Rows = append(t.Rows, row)
			o.logf("refresh: workers=%d trickle=%.0f%% done", k, frac*100)
		}
	}
	return t, nil
}

func runRefreshTrial(res kron.Result, o Options, k int, frac float64) ([]string, error) {
	// Hold out a tail of the stream as the trickle: n updates touch at
	// most 2n nodes, so n = frac*nodes/2 keeps the dirty fraction under
	// frac and well inside the default 0.20 delta threshold.
	nTrickle := int(frac * float64(res.NumNodes) / 2)
	if nTrickle < 1 {
		nTrickle = 1
	}
	if nTrickle > len(res.Updates)/2 {
		nTrickle = len(res.Updates) / 2
	}
	base := res.Updates[:len(res.Updates)-nTrickle]
	trickle := res.Updates[len(res.Updates)-nTrickle:]

	ref, err := core.NewEngine(core.Config{NumNodes: res.NumNodes, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	if err := ref.UpdateBatch(res.Updates); err != nil {
		ref.Close()
		return nil, err
	}
	refRep, refCount, err := ref.ConnectedComponents()
	ref.Close()
	if err != nil {
		return nil, err
	}

	part, err := gzserve.NewRangePartitioner(res.NumNodes, k)
	if err != nil {
		return nil, err
	}
	var workers []*gzserve.Worker
	var servers []*http.Server
	var addrs []string
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		for _, srv := range servers {
			srv.Shutdown(ctx)
		}
		for _, wk := range workers {
			wk.Close()
		}
	}
	for i := 0; i < k; i++ {
		lo, hi := part.Range(i)
		wk, err := gzserve.NewWorker(core.Config{NumNodes: res.NumNodes, Seed: o.Seed}, lo, hi)
		if err != nil {
			shutdown()
			return nil, err
		}
		srv, url, err := serveOn(wk.Handler())
		if err != nil {
			wk.Close()
			shutdown()
			return nil, err
		}
		workers = append(workers, wk)
		servers = append(servers, srv)
		addrs = append(addrs, url)
	}
	defer shutdown()

	newCoord := func(noDelta bool) (*gzserve.Coordinator, error) {
		return gzserve.NewCoordinator(gzserve.CoordinatorConfig{
			Engine:         core.Config{NumNodes: res.NumNodes, Seed: o.Seed},
			Workers:        addrs,
			NoDeltaRefresh: noDelta,
		})
	}
	coDelta, err := newCoord(false)
	if err != nil {
		return nil, err
	}
	coFull, err := newCoord(true)
	if err != nil {
		coDelta.Close(context.Background())
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	defer coFull.Close(ctx)
	defer coDelta.Close(ctx)

	// Bulk load through the delta coordinator, then bring both views to
	// the pre-trickle cut (the delta coordinator's refresh is full here —
	// it has no acknowledged base yet — and establishes its mirrors).
	if err := coDelta.Ingest(base); err != nil {
		return nil, err
	}
	if err := coDelta.Refresh(ctx); err != nil {
		return nil, err
	}
	if err := coFull.Refresh(ctx); err != nil {
		return nil, err
	}

	// The trickle: a small slice of further updates, then one refresh per
	// coordinator over the identical worker cut.
	if err := coDelta.Ingest(trickle); err != nil {
		return nil, err
	}
	if err := coDelta.Flush(); err != nil {
		return nil, err
	}

	fullBytes0 := checkpointBytes(coFull)
	fullStart := time.Now()
	if err := coFull.Refresh(ctx); err != nil {
		return nil, err
	}
	fullDur := time.Since(fullStart)
	fullBytes := checkpointBytes(coFull) - fullBytes0

	deltaBytes0 := checkpointBytes(coDelta)
	deltaRefr0 := coDelta.Stats().DeltaRefreshes
	deltaStart := time.Now()
	if err := coDelta.Refresh(ctx); err != nil {
		return nil, err
	}
	deltaDur := time.Since(deltaStart)
	deltaBytes := checkpointBytes(coDelta) - deltaBytes0

	match := "MATCH"
	if coDelta.Stats().DeltaRefreshes != deltaRefr0+1 {
		match = "NO-DELTA-PATH"
	}
	if coDelta.MergedUpdates() != uint64(len(res.Updates)) || coFull.MergedUpdates() != uint64(len(res.Updates)) {
		match = fmt.Sprintf("LOST UPDATES (%d/%d/%d)", coDelta.MergedUpdates(), coFull.MergedUpdates(), len(res.Updates))
	}
	for _, co := range []*gzserve.Coordinator{coDelta, coFull} {
		rep, count, err := co.ConnectedComponents(ctx)
		if err != nil {
			return nil, err
		}
		if count != refCount || !samePartition(rep, refRep) {
			match = "MISMATCH"
		}
	}

	ratio := "inf"
	if deltaBytes > 0 {
		ratio = fmt.Sprintf("%.1fx", float64(fullBytes)/float64(deltaBytes))
	}
	speedup := "inf"
	if deltaDur > 0 {
		speedup = fmt.Sprintf("%.1fx", float64(fullDur)/float64(deltaDur))
	}
	return []string{
		fmt.Sprintf("%d", k),
		fmt.Sprintf("%.0f%%", frac*100),
		fmt.Sprintf("%d", fullBytes),
		fmt.Sprintf("%d", deltaBytes),
		ratio,
		fmt.Sprintf("%.2f ms", float64(fullDur.Nanoseconds())/1e6),
		fmt.Sprintf("%.2f ms", float64(deltaDur.Nanoseconds())/1e6),
		speedup,
		match,
	}, nil
}

// checkpointBytes sums the checkpoint payload bytes a coordinator has
// pulled across all of its worker connections.
func checkpointBytes(co *gzserve.Coordinator) uint64 {
	var n uint64
	for _, w := range co.Stats().Workers {
		n += w.CheckpointBytes
	}
	return n
}
