package experiments

import (
	"graphzeppelin/internal/baseline/aspenlike"
	"graphzeppelin/internal/baseline/terracelike"
	"graphzeppelin/internal/stream"
)

// The baselines expose value-returning Apply methods with identical
// shapes; these adapters unify them behind the interface Fig16 needs.

type aspenAdapter struct{ g *aspenlike.Graph }

func newAspenAdapter(n uint32) *aspenAdapter { return &aspenAdapter{g: aspenlike.New(n)} }

func (a *aspenAdapter) Apply(u stream.Update) { a.g.Apply(u) }
func (a *aspenAdapter) ConnectedComponents() ([]uint32, int) {
	return a.g.ConnectedComponents()
}

type terraceAdapter struct{ g *terracelike.Graph }

func newTerraceAdapter(n uint32) *terraceAdapter { return &terraceAdapter{g: terracelike.New(n)} }

func (a *terraceAdapter) Apply(u stream.Update) { a.g.Apply(u) }
func (a *terraceAdapter) ConnectedComponents() ([]uint32, int) {
	return a.g.ConnectedComponents()
}
