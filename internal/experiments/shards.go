package experiments

import (
	"fmt"
	"time"

	"graphzeppelin/internal/core"
)

// ShardSweep measures ingestion rate and shard balance as the ingest
// shard count grows. It is the system-level counterpart of Figure 14 for
// the sharded pipeline: each shard is one Graph Worker owning its nodes'
// sketches outright, so the sweep shows both the scaling headroom on
// multi-core hosts and how evenly the node % shards partition spreads this
// stream's batches.
func ShardSweep(o Options) (*Table, error) {
	o = o.withDefaults()
	scale := o.MaxScale - 1
	if scale < 8 {
		scale = 8
	}
	res := KronStream(scale, o.Seed)
	n := len(res.Updates)
	t := &Table{
		ID:     "shards",
		Title:  fmt.Sprintf("Ingestion rate vs shard count (kron%d)", scale),
		Header: []string{"shards", "rate", "speedup vs 1", "batch skew"},
		Notes: []string{
			"one Graph Worker per shard; nodes partitioned by node % shards",
			"batch skew = max/mean of per-shard applied batches (1.00 = perfectly balanced)",
		},
	}
	var base time.Duration
	for _, s := range []int{1, 2, 4, 8, 16} {
		eng, dur, err := runGZ(res, core.Config{Seed: o.Seed, Shards: s})
		if err != nil {
			return nil, err
		}
		st := eng.Stats()
		eng.Close()
		if s == 1 {
			base = dur
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", s),
			rate(n, dur),
			fmt.Sprintf("%.2fx", base.Seconds()/dur.Seconds()),
			fmt.Sprintf("%.2f", batchSkew(st.ShardBatches)),
		})
		o.logf("shards: shards=%d done", s)
	}
	return t, nil
}

// batchSkew returns max/mean of the per-shard batch counts.
func batchSkew(perShard []uint64) float64 {
	if len(perShard) == 0 {
		return 0
	}
	var sum, max uint64
	for _, b := range perShard {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(perShard))
	return float64(max) / mean
}
