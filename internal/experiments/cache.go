package experiments

import (
	"fmt"
	"time"

	"graphzeppelin/internal/core"
	"graphzeppelin/internal/kron"
)

// CacheSweep measures the tiered out-of-core store: disk-mode ingestion
// across a write-back cache budget × node-group size grid, against the
// uncached per-slot read–modify–write baseline. For every point it
// reports the ingestion rate, the sketch-store block I/Os per update
// (construction-time slot initialization excluded — the Lemma 4 quantity
// the grouped flushes bound), the cache hit rate, and whether the
// recovered partition matches a RAM-mode engine over the same stream.
func CacheSweep(o Options) (*Table, error) {
	o = o.withDefaults()
	scale := o.MaxScale - 1
	if scale < 8 {
		scale = 8
	}
	res := KronStream(scale, o.Seed)
	n := len(res.Updates)
	t := &Table{
		ID:     "cache",
		Title:  fmt.Sprintf("Write-back cache budget × node-group size, disk-mode ingest (kron%d)", scale),
		Header: []string{"config", "rate", "blocks/update", "hit rate", "matches RAM"},
		Notes: []string{
			"baseline = per-slot read-modify-write per batch (CacheBytes < 0), the pre-cache disk path",
			"blocks/update counts sketch-store block I/Os for ingest+drain plus the close-time dirty spill (one-time slot init and read-only query scans excluded) — full-lifecycle, not deferral-flattered",
			"groups sized toward the 16 KiB device block unless npg is pinned; cache budgets in bytes",
		},
	}

	// RAM-mode reference partition for the correctness column.
	ramEng, _, err := runGZ(res, core.Config{Seed: o.Seed, Workers: 2})
	if err != nil {
		return nil, err
	}
	wantRep, wantCount, err := ramEng.ConnectedComponents()
	ramEng.Close()
	if err != nil {
		return nil, err
	}

	type point struct {
		name string
		cfg  core.Config
	}
	points := []point{
		{"uncached baseline", core.Config{CacheBytes: -1}},
		{"cache=64KiB npg=1", core.Config{CacheBytes: 64 << 10, NodesPerGroup: 1}},
		{"cache=64KiB npg=auto", core.Config{CacheBytes: 64 << 10}},
		{"cache=1MiB npg=auto", core.Config{CacheBytes: 1 << 20}},
		{"cache=32MiB npg=1", core.Config{NodesPerGroup: 1}},
		{"cache=32MiB npg=auto", core.Config{}},
		{"cache=32MiB npg=16", core.Config{NodesPerGroup: 16}},
	}
	for _, p := range points {
		cfg := p.cfg
		cfg.Seed = o.Seed
		cfg.Workers = 2
		cfg.SketchesOnDisk = true
		row, err := cachePoint(p.name, cfg, res, n, wantRep, wantCount)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
		o.logf("cache: %s done", p.name)
	}
	return t, nil
}

// cachePoint runs one sweep configuration and formats its table row.
func cachePoint(name string, cfg core.Config, res kron.Result, n int, wantRep []uint32, wantCount int) ([]string, error) {
	cfg.NumNodes = res.NumNodes
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	ioBefore := eng.Stats().SketchIO
	start := time.Now()
	for _, u := range res.Updates {
		if err := eng.Update(u); err != nil {
			return nil, err
		}
	}
	if err := eng.Drain(); err != nil {
		return nil, err
	}
	dur := time.Since(start)
	ioDrained := eng.Stats().SketchIO

	rep, count, err := eng.ConnectedComponents()
	if err != nil {
		return nil, err
	}
	match := "MATCH"
	if count != wantCount || !samePartition(rep, wantRep) {
		match = "MISMATCH"
	}

	// Charge the cached modes their deferred dirty-group spill (the
	// write delta through Close) on top of the ingest delta, so the
	// blocks/update column is full-lifecycle rather than
	// deferral-flattered. Queries only read, so taking the write delta
	// keeps the (read-only) query scan out of the figure. Stats stay
	// readable after Close.
	if err := eng.Close(); err != nil {
		return nil, err
	}
	st := eng.Stats()
	blocks := ioDrained.TotalBlocks() - ioBefore.TotalBlocks() +
		st.SketchIO.WriteBlocks - ioDrained.WriteBlocks

	hitRate := "-"
	if lookups := st.SketchCache.Hits + st.SketchCache.Misses; lookups > 0 {
		hitRate = fmt.Sprintf("%.1f%%", 100*float64(st.SketchCache.Hits)/float64(lookups))
	}
	return []string{
		name,
		rate(n, dur),
		fmt.Sprintf("%.4f", float64(blocks)/float64(n)),
		hitRate,
		match,
	}, nil
}
