package experiments

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"graphzeppelin"
	"graphzeppelin/internal/stream"
)

// ScalingSweep measures multi-core ingest scaling across the three layers
// this pipeline optimizes: concurrent producers feeding striped gutters,
// per-shard SPSC queues with padded, cache-friendly indices, and
// shard-owning Graph Workers running the batched bucket-XOR kernel. Two
// workloads are swept:
//
//   - uniform: a Kronecker stream whose node-keyed batches spread evenly
//     over the node % shards partition, with producers = shards = w. This
//     is the headline producers × shards scaling curve; wall-clock
//     speedup requires a multi-core host (on one vCPU the curve is flat
//     and only measures hand-off overhead — read it next to the recorded
//     GOMAXPROCS/NumCPU metadata).
//
//   - skewed: a stream in which every edge touches one of 16 hot nodes,
//     all homed on shard 0 under the static partition, run with and
//     without the skew-aware rebalancer at 4 producers × 4 shards. The
//     batch-skew column (max/mean of per-worker applied batches) is the
//     hardware-independent signal: static assignment serializes behind
//     shard 0 (skew → shards), rebalancing flattens it toward 1.0 by
//     migrating hot node slices to idle workers.
func ScalingSweep(o Options) (*Table, error) {
	o = o.withDefaults()
	scale := o.MaxScale - 1
	if scale < 8 {
		scale = 8
	}
	res := KronStream(scale, o.Seed)
	n := len(res.Updates)
	t := &Table{
		ID:    "scaling",
		Title: fmt.Sprintf("Multi-core ingest scaling (kron%d uniform + skewed stream)", scale),
		Header: []string{
			"stream", "producers", "shards", "rebalance", "rate", "speedup", "batch skew", "rebalances",
		},
		Notes: []string{
			"speedup: uniform rows vs the 1×1 row; skewed rows vs the static (rebalance=off) row",
			"batch skew = max/mean of per-worker applied batches (1.00 = perfectly balanced)",
			"wall-clock speedup needs a multi-core host; batch skew is hardware-independent",
		},
	}

	var base time.Duration
	for _, w := range []int{1, 2, 4, 8} {
		st, dur, err := runScaling(res.Updates, res.NumNodes, w, w, true, o.Seed)
		if err != nil {
			return nil, err
		}
		if w == 1 {
			base = dur
		}
		t.Rows = append(t.Rows, []string{
			"uniform", fmt.Sprintf("%d", w), fmt.Sprintf("%d", w), "on",
			rate(n, dur),
			fmt.Sprintf("%.2fx", base.Seconds()/dur.Seconds()),
			fmt.Sprintf("%.2f", batchSkew(st.ShardBatches)),
			fmt.Sprintf("%d", st.Rebalances),
		})
		o.logf("scaling: uniform workers=%d done", w)
	}

	// The skewed phase needs enough updates that hot gutters refill and
	// flush many times over — with too short a stream every batch comes
	// from the final flush (one per node) and the skew washes out.
	const skewShards = 4
	skewCount := 4 * n
	if skewCount < 400_000 {
		skewCount = 400_000
	}
	skewed := skewedStream(res.NumNodes, skewShards, skewCount, o.Seed)
	var staticDur time.Duration
	for _, reb := range []bool{false, true} {
		st, dur, err := runScaling(skewed, res.NumNodes, skewShards, skewShards, reb, o.Seed)
		if err != nil {
			return nil, err
		}
		mode, speedup := "off", "1.00x"
		if !reb {
			staticDur = dur
		} else {
			mode = "on"
			speedup = fmt.Sprintf("%.2fx", staticDur.Seconds()/dur.Seconds())
		}
		t.Rows = append(t.Rows, []string{
			"skewed", fmt.Sprintf("%d", skewShards), fmt.Sprintf("%d", skewShards), mode,
			rate(len(skewed), dur),
			speedup,
			fmt.Sprintf("%.2f", batchSkew(st.ShardBatches)),
			fmt.Sprintf("%d", st.Rebalances),
		})
		o.logf("scaling: skewed rebalance=%v done", reb)
	}
	return t, nil
}

// skewedStream builds an insert stream in which every edge has one
// endpoint among 16 hot nodes — all congruent to 0 modulo shards, so
// under the static node % shards partition their batches land on shard 0
// — and the other endpoint is hot half the time too (updates buffer under
// both endpoints, so hot-hot edges double down on the overloaded shard:
// ~81% of all batches are shard 0's under static assignment).
func skewedStream(numNodes uint32, shards, count int, seed uint64) []graphzeppelin.Update {
	rng := rand.New(rand.NewPCG(seed, 0x5eed))
	hot := make([]uint32, 0, 16)
	for n := uint32(0); len(hot) < 16 && n < numNodes; n += uint32(shards) {
		hot = append(hot, n)
	}
	ups := make([]graphzeppelin.Update, 0, count)
	for len(ups) < count {
		u := hot[rng.IntN(len(hot))]
		var v uint32
		if rng.IntN(2) == 0 {
			v = hot[rng.IntN(len(hot))]
		} else {
			v = rng.Uint32N(numNodes)
		}
		if u == v {
			continue
		}
		ups = append(ups, graphzeppelin.Update{
			Edge: stream.Edge{U: u, V: v},
			Type: stream.Insert,
		})
	}
	return ups
}

// runScaling ingests ups with p concurrent producer sessions into a
// graph with the given shard count and rebalancing mode, returning the
// final stats and wall-clock ingest time (including the final flush).
func runScaling(ups []graphzeppelin.Update, numNodes uint32, p, shards int, rebalance bool, seed uint64) (graphzeppelin.Stats, time.Duration, error) {
	g, err := graphzeppelin.New(numNodes,
		graphzeppelin.WithSeed(seed),
		graphzeppelin.WithShards(shards),
		graphzeppelin.WithRebalancing(rebalance),
	)
	if err != nil {
		return graphzeppelin.Stats{}, 0, err
	}
	defer g.Close()

	parts := make([][]graphzeppelin.Update, p)
	for i, u := range ups {
		parts[i%p] = append(parts[i%p], u)
	}
	errs := make([]error, p)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ing, err := g.NewIngestor()
			if err != nil {
				errs[i] = err
				return
			}
			for _, u := range parts[i] {
				if err := ing.Apply(u); err != nil {
					errs[i] = err
					return
				}
			}
			errs[i] = ing.Close()
		}(i)
	}
	wg.Wait()
	if err := g.Flush(); err != nil {
		return graphzeppelin.Stats{}, 0, err
	}
	dur := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return graphzeppelin.Stats{}, 0, err
		}
	}
	return g.Stats(), dur, nil
}
