package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// smallOpts keeps the experiment smoke tests fast.
func smallOpts() Options {
	return Options{MaxScale: 7, Trials: 2, Seed: 3}
}

func TestTablePrint(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestKronStreamCached(t *testing.T) {
	a := KronStream(6, 77)
	b := KronStream(6, 77)
	if &a.Updates[0] != &b.Updates[0] {
		t.Fatal("KronStream did not cache")
	}
}

func TestFig5Rows(t *testing.T) {
	tab := Fig5(smallOpts())
	if len(tab.Rows) != len(Fig4Lengths) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(Fig4Lengths))
	}
	// The size-reduction shape: ~2x below the 128-bit threshold, ~4x at
	// and above 1e10.
	parseRatio := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
		if err != nil {
			t.Fatalf("bad ratio %q", s)
		}
		return v
	}
	if r := parseRatio(tab.Rows[0][3]); r < 1.5 || r > 2.5 {
		t.Fatalf("small-vector reduction %v, want ~2x", r)
	}
	if r := parseRatio(tab.Rows[len(tab.Rows)-1][3]); r < 3.5 || r > 4.5 {
		t.Fatalf("large-vector reduction %v, want ~4x", r)
	}
}

func TestSketchRatesShape(t *testing.T) {
	cube, std := SketchRates(1e6, 20000, 2000, 1)
	if cube <= std {
		t.Fatalf("CubeSketch (%.0f/s) not faster than standard l0 (%.0f/s)", cube, std)
	}
}

func TestTable10(t *testing.T) {
	tab := Table10(smallOpts())
	if len(tab.Rows) < 4 {
		t.Fatalf("too few datasets: %d", len(tab.Rows))
	}
}

func TestSystemExperimentsRun(t *testing.T) {
	o := smallOpts()
	if _, err := Fig11(o); err != nil {
		t.Fatalf("fig11: %v", err)
	}
	if _, err := Fig13(o); err != nil {
		t.Fatalf("fig13: %v", err)
	}
}

func TestReliabilityZeroFailures(t *testing.T) {
	o := smallOpts()
	_, results, err := Reliability(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("datasets = %d, want 5", len(results))
	}
	for _, r := range results {
		if r.Failures != 0 {
			t.Fatalf("%s: %d failures in %d checks", r.Dataset, r.Failures, r.Checks)
		}
	}
}

func TestSamePartitionHelper(t *testing.T) {
	if !samePartition([]uint32{0, 0, 2}, []uint32{5, 5, 9}) {
		t.Fatal("equivalent partitions rejected")
	}
	if samePartition([]uint32{0, 0, 2}, []uint32{5, 6, 9}) {
		t.Fatal("split partition accepted")
	}
	if samePartition([]uint32{0, 1}, []uint32{5, 5}) {
		t.Fatal("merged partition accepted")
	}
	if samePartition([]uint32{0}, []uint32{0, 1}) {
		t.Fatal("length mismatch accepted")
	}
}

func TestCacheSweepMatchesRAM(t *testing.T) {
	tbl, err := CacheSweep(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "MATCH" {
			t.Fatalf("%s: disk-mode partition diverged from the RAM reference", row[0])
		}
	}
}

func TestDistributedMergeMatchesReference(t *testing.T) {
	tbl, err := DistributedMerge(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "MATCH" {
			t.Fatalf("shards=%s: merged engine diverged from the single-engine reference", row[0])
		}
	}
}
