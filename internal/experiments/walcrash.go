package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"graphzeppelin/internal/core"
	"graphzeppelin/internal/gzserve"
	"graphzeppelin/internal/kron"
	"graphzeppelin/internal/wal"
)

// WALOverhead measures what continuous durability costs: the same stream
// ingested with the write-ahead log off and then at each fsync policy,
// logging to real files. The interval policy is the deployment default
// story — group-committed appends with a background sync timer — and
// should stay within a few percent of the no-WAL baseline; fsync=batch
// buys ack-implies-durable at the price of one (group-shared) fsync per
// ingest call.
func WALOverhead(o Options) (*Table, error) {
	o = o.withDefaults()
	scale := o.MaxScale - 1
	if scale < 8 {
		scale = 8
	}
	res := KronStream(scale, o.Seed)
	dir, err := os.MkdirTemp("", "gzwal")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Repeat the stream until each trial ingests enough updates to
	// measure: sub-100ms runs drown the policy difference in noise and
	// never even fire the interval sync timer.
	reps := 1
	for reps*len(res.Updates) < 500_000 {
		reps++
	}
	total := reps * len(res.Updates)

	t := &Table{
		ID:     "wal",
		Title:  fmt.Sprintf("Write-ahead log ingest overhead by fsync policy (kron%d ×%d, %d updates)", scale, reps, total),
		Header: []string{"wal", "ingest rate", "overhead", "appends", "logged", "fsyncs"},
		Notes: []string{
			"batched ingest (2048-update batches), log segments on real files; best of 3 trials per policy after a warm-up pass",
			"overhead = rate drop vs the no-WAL baseline; batch = fsync before every ingest ack (ack implies durable)",
			"interval = 50ms background sync timer (a crash loses at most one interval); off = OS write-back only",
		},
	}

	policies := []struct {
		name    string
		enabled bool
		policy  wal.FsyncPolicy
	}{
		{"none", false, wal.FsyncBatch},
		{"fsync=off", true, wal.FsyncOff},
		{"fsync=interval", true, wal.FsyncInterval},
		{"fsync=batch", true, wal.FsyncBatch},
	}
	const batch = 2048
	ingest := func(cfg core.Config) (time.Duration, core.Stats, error) {
		eng, err := core.NewEngine(cfg)
		if err != nil {
			return 0, core.Stats{}, err
		}
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			for off := 0; off < len(res.Updates); off += batch {
				end := off + batch
				if end > len(res.Updates) {
					end = len(res.Updates)
				}
				if err := eng.UpdateBatch(res.Updates[off:end]); err != nil {
					eng.Close()
					return 0, core.Stats{}, err
				}
			}
		}
		if err := eng.Drain(); err != nil {
			eng.Close()
			return 0, core.Stats{}, err
		}
		d := time.Since(start)
		st := eng.Stats()
		return d, st, eng.Close()
	}

	// Warm-up pass (page cache, lazy init, CPU spin-up) so the first
	// measured policy isn't handicapped by cold-start costs.
	if _, _, err := ingest(core.Config{NumNodes: res.NumNodes, Seed: o.Seed}); err != nil {
		return nil, err
	}

	var baseRate float64
	for pi, p := range policies {
		var best time.Duration
		var st core.Stats
		for trial := 0; trial < 3; trial++ {
			cfg := core.Config{NumNodes: res.NumNodes, Seed: o.Seed}
			if p.enabled {
				cfg.WAL = true
				cfg.WALDir = filepath.Join(dir, fmt.Sprintf("p%d-t%d", pi, trial))
				cfg.WALFsync = p.policy
			}
			d, s, err := ingest(cfg)
			if err != nil {
				return nil, err
			}
			if best == 0 || d < best {
				best, st = d, s
			}
		}
		r := float64(total) / best.Seconds()
		overhead := "baseline"
		if !p.enabled {
			baseRate = r
		} else if baseRate > 0 {
			overhead = fmt.Sprintf("%.1f%%", 100*(baseRate-r)/baseRate)
		}
		appends, logged, fsyncs := "-", "-", "-"
		if p.enabled {
			appends = fmt.Sprintf("%d", st.WAL.Appends)
			logged = mib(int64(st.WAL.Bytes))
			fsyncs = fmt.Sprintf("%d", st.WAL.Fsyncs)
		}
		t.Rows = append(t.Rows, []string{
			p.name, rate(total, best), overhead, appends, logged, fsyncs,
		})
		o.logf("wal: %s done (%s)", p.name, rate(total, best))
	}
	return t, nil
}

// CrashRecover is the durability end-to-end: a 2-worker gzserve cluster
// in which worker 0 runs with a durable state directory, is killed
// mid-stream while ingest sends are still in flight, and is restarted
// on the same address and state directory. The coordinator's retrying
// clients ride out the outage; the restarted worker recovers its engine
// and dedup gate from checkpoint + WAL before serving, so retried
// batches the dead process had already logged are deduplicated, not
// double-applied. The final merged answer must match a single engine
// over the whole stream. With Options.GzserveBin set the durable worker
// is a real gzserve process and the kill is SIGKILL; otherwise the
// crash is simulated in-process (server torn down abruptly, in-memory
// gate state discarded).
func CrashRecover(o Options) (*Table, error) {
	o = o.withDefaults()
	scale := o.MaxScale - 1
	if scale < 8 {
		scale = 8
	}
	res := KronStream(scale, o.Seed)

	ref, _, err := runGZ(res, core.Config{Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	refRep, refCount, err := ref.ConnectedComponents()
	ref.Close()
	if err != nil {
		return nil, err
	}

	mode := "in-process crash"
	if o.GzserveBin != "" {
		mode = "SIGKILL on a gzserve process"
	}
	t := &Table{
		ID:     "crashrecover",
		Title:  fmt.Sprintf("Crash recovery under load, durable gzserve worker (kron%d, %s)", scale, mode),
		Header: []string{"workers", "killed after", "recovered batches", "retries", "dups", "merged updates", "vs reference"},
		Notes: []string{
			"worker 0 runs with a durable state dir (WAL fsync=batch); it is killed with sends in flight and restarted on the same address and state dir",
			"recovered batches = WAL records the restarted worker replayed before serving",
			"dups count retried batches whose original the dead process had already logged: dropped by the recovered dedup gate, not double-applied",
			"vs reference = coordinator's merged component partition equals a single engine over the whole stream",
		},
	}
	row, err := runCrashRecoverTrial(res, o, refRep, refCount)
	if err != nil {
		return nil, fmt.Errorf("crashrecover: %w", err)
	}
	t.Rows = append(t.Rows, row)
	return t, nil
}

// crashWorker abstracts "worker 0" across the two launch modes: it can
// be killed abruptly and restarted on the same address and state dir.
type crashWorker interface {
	url() string
	kill() error
	restart() error
	shutdown()
}

func runCrashRecoverTrial(res kron.Result, o Options, refRep []uint32, refCount int) ([]string, error) {
	const k = 2
	part, err := gzserve.NewRangePartitioner(res.NumNodes, k)
	if err != nil {
		return nil, err
	}
	stateDir, err := os.MkdirTemp("", "gzcrash")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(stateDir)

	// Worker 0: durable and killable (a gzserve process when a binary is
	// provided). Worker 1: a plain in-process worker — its durability is
	// not under test, and everything speaks the same loopback HTTP.
	var w0 crashWorker
	lo0, hi0 := part.Range(0)
	if o.GzserveBin != "" {
		w0, err = newProcCrashWorker(o, res.NumNodes, filepath.Join(stateDir, "w0"))
	} else {
		w0, err = newInprocCrashWorker(o, res.NumNodes, lo0, hi0, filepath.Join(stateDir, "w0"))
	}
	if err != nil {
		return nil, err
	}
	defer w0.shutdown()

	lo1, hi1 := part.Range(1)
	wk1, err := gzserve.NewWorker(core.Config{NumNodes: res.NumNodes, Seed: o.Seed}, lo1, hi1)
	if err != nil {
		return nil, err
	}
	defer wk1.Close()
	srv1, url1, err := serveOn(wk1.Handler())
	if err != nil {
		return nil, err
	}
	defer srv1.Shutdown(context.Background())

	co, err := gzserve.NewCoordinator(gzserve.CoordinatorConfig{
		Engine:  core.Config{NumNodes: res.NumNodes, Seed: o.Seed},
		Workers: []string{w0.url(), url1},
		// Small dispatch batches so the kill lands with real sends behind
		// it, and a generous retry budget: the exponential backoff (25ms
		// doubling, 1s cap) must outlast the worker restart window.
		BatchSize: 512,
		Client:    gzserve.ClientConfig{MaxInFlight: 4, MaxAttempts: 12},
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	defer co.Close(ctx)
	coSrv, coURL, err := serveOn(co.Handler())
	if err != nil {
		return nil, err
	}
	defer coSrv.Shutdown(context.Background())

	drv := gzserve.NewClient(coURL, gzserve.ClientConfig{MaxInFlight: 4})
	if _, err := drv.Info(ctx); err != nil {
		return nil, fmt.Errorf("coordinator handshake: %w", err)
	}

	// First half of the stream async, then the kill lands while send
	// windows are still full — some batches are acked, some are logged
	// but unacknowledged, some never arrived. All three classes must
	// resolve correctly through restart + retry.
	const batch = 2048
	half := len(res.Updates) / 2
	for off := 0; off < half; off += batch {
		end := off + batch
		if end > half {
			end = half
		}
		drv.SendAsync(ctx, res.Updates[off:end])
	}
	// Don't kill into an empty log: wait until worker 0 has actually
	// applied (and logged) a few batches, so the restart has a WAL suffix
	// to replay.
	applied := waitForBatches(w0.url(), 2, 15*time.Second)
	killedAt := fmt.Sprintf("%d/%d updates dispatched, %d batches applied", half, len(res.Updates), applied)
	if err := w0.kill(); err != nil {
		return nil, fmt.Errorf("kill: %w", err)
	}
	// Restart immediately: the first-half sends still in flight at the
	// kill fail against the dead worker and sit in retry backoff until
	// the restarted process comes back on the same address. (The restart
	// must not wait for more ingest — the coordinator's bounded send
	// windows stall against a dead worker, so a producer-side pause here
	// would outlast the retry budget on larger streams.)
	if err := w0.restart(); err != nil {
		return nil, fmt.Errorf("restart: %w", err)
	}
	for off := half; off < len(res.Updates); off += batch {
		end := off + batch
		if end > len(res.Updates) {
			end = len(res.Updates)
		}
		drv.SendAsync(ctx, res.Updates[off:end])
	}
	if err := drv.Drain(); err != nil {
		return nil, fmt.Errorf("drain: %w", err)
	}

	resp, err := http.Post(coURL+gzserve.PathRefresh, "application/json", nil)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("refresh: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("refresh: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var refresh struct {
		MergedUpdates uint64 `json:"merged_updates"`
	}
	if err := json.Unmarshal(body, &refresh); err != nil {
		return nil, fmt.Errorf("refresh: %w (body %q)", err, body)
	}

	resp, err = http.Get(coURL + gzserve.PathComponents)
	if err != nil {
		return nil, err
	}
	var comp struct {
		Count int      `json:"count"`
		Rep   []uint32 `json:"rep"`
	}
	err = json.NewDecoder(resp.Body).Decode(&comp)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("components: %w", err)
	}

	resp, err = http.Get(coURL + gzserve.PathStatsz)
	if err != nil {
		return nil, err
	}
	var st gzserve.CoordStats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("statsz: %w", err)
	}
	var retries, dups uint64
	for _, w := range st.Workers {
		retries += w.Retries
		dups += w.Duplicates
	}
	var recovered uint64
	if wst, werr := fetchWorkerStats(w0.url()); werr == nil {
		recovered = wst.RecoveredBatches
	}

	match := "MATCH"
	if comp.Count != refCount || !samePartition(comp.Rep, refRep) {
		match = "MISMATCH"
	}
	if refresh.MergedUpdates != uint64(len(res.Updates)) {
		match = fmt.Sprintf("LOST UPDATES (%d/%d)", refresh.MergedUpdates, len(res.Updates))
	}
	return []string{
		fmt.Sprintf("%d", k),
		killedAt,
		fmt.Sprintf("%d", recovered),
		fmt.Sprintf("%d", retries),
		fmt.Sprintf("%d", dups),
		fmt.Sprintf("%d", refresh.MergedUpdates),
		match,
	}, nil
}

// waitForBatches polls a worker's /statsz until it has applied at least
// min ingest batches (or the deadline passes) and returns the count seen.
func waitForBatches(url string, min uint64, timeout time.Duration) uint64 {
	deadline := time.Now().Add(timeout)
	for {
		st, err := fetchWorkerStats(url)
		if err == nil && st.Batches >= min {
			return st.Batches
		}
		if time.Now().After(deadline) {
			return st.Batches
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func fetchWorkerStats(url string) (gzserve.WorkerStats, error) {
	resp, err := http.Get(url + gzserve.PathStatsz)
	if err != nil {
		return gzserve.WorkerStats{}, err
	}
	defer resp.Body.Close()
	var st gzserve.WorkerStats
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// ---- in-process crash worker ----

type inprocCrashWorker struct {
	o        Options
	numNodes uint32
	lo, hi   uint32
	dur      gzserve.Durability
	addr     string
	wk       *gzserve.Worker
	srv      *http.Server
}

func newInprocCrashWorker(o Options, numNodes, lo, hi uint32, stateDir string) (*inprocCrashWorker, error) {
	w := &inprocCrashWorker{
		o: o, numNodes: numNodes, lo: lo, hi: hi,
		dur: gzserve.Durability{StateDir: stateDir, Fsync: wal.FsyncBatch},
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	w.addr = ln.Addr().String()
	if err := w.start(ln); err != nil {
		ln.Close()
		return nil, err
	}
	return w, nil
}

func (w *inprocCrashWorker) start(ln net.Listener) error {
	wk, _, err := gzserve.NewDurableWorker(core.Config{NumNodes: w.numNodes, Seed: w.o.Seed}, w.lo, w.hi, w.dur)
	if err != nil {
		return err
	}
	w.wk = wk
	w.srv = &http.Server{Handler: wk.Handler()}
	go w.srv.Serve(ln)
	return nil
}

func (w *inprocCrashWorker) url() string { return "http://" + w.addr }

// kill tears the server down abruptly (open connections are closed, not
// drained) and discards the worker without its graceful-shutdown
// checkpoint — the closest an in-process harness gets to SIGKILL. The
// engine is closed only to stop its goroutines; the worker's in-memory
// dedup gate dies unused, exactly as in a real crash.
func (w *inprocCrashWorker) kill() error {
	w.srv.Close()
	return w.wk.Engine().Close()
}

func (w *inprocCrashWorker) restart() error {
	ln, err := listenRetry(w.addr)
	if err != nil {
		return err
	}
	if err := w.start(ln); err != nil {
		ln.Close()
		return err
	}
	return nil
}

func (w *inprocCrashWorker) shutdown() {
	if w.srv != nil {
		w.srv.Close()
	}
	if w.wk != nil {
		w.wk.Close()
	}
}

// listenRetry binds addr, retrying briefly while the previous socket
// finishes closing.
func listenRetry(addr string) (net.Listener, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// ---- gzserve-process crash worker ----

type procCrashWorker struct {
	o        Options
	numNodes uint32
	stateDir string
	dir      string
	addr     string
	cmd      *exec.Cmd
}

func newProcCrashWorker(o Options, numNodes uint32, stateDir string) (*procCrashWorker, error) {
	dir, err := os.MkdirTemp("", "gzcrashproc")
	if err != nil {
		return nil, err
	}
	w := &procCrashWorker{o: o, numNodes: numNodes, stateDir: stateDir, dir: dir}
	cmd, url, err := launchProc(o, o.GzserveBin, dir, "w0", w.args())
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	w.cmd = cmd
	w.addr = strings.TrimPrefix(url, "http://")
	return w, nil
}

func (w *procCrashWorker) args() []string {
	return []string{
		"-mode", "worker",
		"-nodes", fmt.Sprintf("%d", w.numNodes),
		"-seed", fmt.Sprintf("%d", w.o.Seed),
		"-worker-index", "0", "-worker-count", "2",
		"-state-dir", w.stateDir,
	}
}

func (w *procCrashWorker) url() string { return "http://" + w.addr }

func (w *procCrashWorker) kill() error {
	if err := w.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		return err
	}
	// Reap; SIGKILL makes Wait report an exit error, which is expected.
	w.cmd.Wait()
	return nil
}

// restart relaunches gzserve on the exact same address: the coordinator's
// client keeps retrying against the URL it was born with. The new process
// recovers from the same -state-dir before it starts serving.
func (w *procCrashWorker) restart() error {
	os.Remove(filepath.Join(w.dir, "w0.addr"))
	cmd, _, err := launchProcAt(w.o, w.o.GzserveBin, w.dir, "w0", w.addr, w.args())
	if err != nil {
		return err
	}
	w.cmd = cmd
	return nil
}

func (w *procCrashWorker) shutdown() {
	if w.cmd != nil && w.cmd.ProcessState == nil {
		w.cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { w.cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			w.cmd.Process.Kill()
			<-done
		}
	}
	os.RemoveAll(w.dir)
}

// launchProcAt is launchProc with a fixed listen address instead of port
// 0 — for restarting a killed process where its clients expect it. The
// whole launch is retried in case the dead process's socket is still
// closing when the new process tries to bind.
func launchProcAt(o Options, bin, dir, name, addr string, args []string) (*exec.Cmd, string, error) {
	addrFile := filepath.Join(dir, name+".addr")
	deadline := time.Now().Add(15 * time.Second)
	for {
		cmd := exec.Command(bin, append(args, "-listen", addr, "-addr-file", addrFile)...)
		if o.Verbose {
			cmd.Stderr = o.Progress
		}
		if err := cmd.Start(); err != nil {
			return nil, "", err
		}
		for time.Now().Before(deadline) {
			if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
				return cmd, "http://" + string(b), nil
			}
			if cmd.ProcessState != nil {
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
		cmd.Process.Kill()
		cmd.Wait()
		if time.Now().After(deadline) {
			return nil, "", fmt.Errorf("gzserve %s did not come back on %s", name, addr)
		}
		os.Remove(addrFile)
		time.Sleep(50 * time.Millisecond)
	}
}
