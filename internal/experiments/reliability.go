package experiments

import (
	"fmt"

	"graphzeppelin/internal/bitset"
	"graphzeppelin/internal/core"
	"graphzeppelin/internal/dsu"
	"graphzeppelin/internal/kron"
	"graphzeppelin/internal/stream"
)

// matRef is the Section 6.3 reference: an adjacency matrix stored as a bit
// vector, answering connectivity exactly via Kruskal (DSU over present
// edges).
type matRef struct {
	n    uint32
	bits *bitset.Set
}

func newMatRef(n uint32) *matRef {
	return &matRef{n: n, bits: bitset.New(stream.VectorLen(uint64(n)))}
}

func (m *matRef) apply(u stream.Update) {
	m.bits.Flip(stream.EdgeIndex(uint64(m.n), u.Edge))
}

func (m *matRef) components() ([]uint32, int) {
	d := dsu.New(int(m.n))
	m.bits.ForEach(func(idx uint64) bool {
		e, _ := stream.IndexEdge(uint64(m.n), idx)
		d.Union(e.U, e.V)
		return true
	})
	rep, _ := d.Components()
	return rep, d.Count()
}

// samePartition reports whether two representative vectors encode the
// same partition, label-independently.
func samePartition(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := make(map[uint32]uint32, 64)
	bwd := make(map[uint32]uint32, 64)
	for i := range a {
		if m, ok := fwd[a[i]]; ok && m != b[i] {
			return false
		}
		if m, ok := bwd[b[i]]; ok && m != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
	return true
}

// ReliabilityResult is one dataset's §6.3 outcome.
type ReliabilityResult struct {
	Dataset  string
	Checks   int
	Failures int
}

// Reliability regenerates the Section 6.3 experiment: interleave periodic
// connectivity checks with stream ingestion on a Kronecker stream and the
// four real-world stand-ins, comparing every answer against the
// adjacency-matrix + Kruskal reference. The paper ran 1000 checks per
// dataset and observed zero failures; Trials scales the count.
func Reliability(o Options) (*Table, []ReliabilityResult, error) {
	o = o.withDefaults()
	type dataset struct {
		name  string
		n     uint32
		edges []stream.Edge
	}
	kscale := o.MaxScale - 1
	if kscale < 7 {
		kscale = 7
	}
	datasets := []dataset{
		{fmt.Sprintf("kron%d", kscale), 1 << kscale, kron.DenseKronecker(kscale, o.Seed)},
		{"p2p-gnutella*", 600, kron.GnutellaLike(600, 1500, o.Seed)},
		{"rec-amazon*", 900, kron.AmazonLike(900, o.Seed)},
		{"google-plus*", 500, kron.GooglePlusLike(500, 12, o.Seed)},
		{"web-uk*", 500, kron.WebUKLike(500, 10, 0.3, 0.5, o.Seed)},
	}
	t := &Table{
		ID:     "reliability",
		Title:  "Observed failure rate vs exact adjacency-matrix reference (§6.3)",
		Header: []string{"dataset", "checks", "failures"},
		Notes:  []string{"paper: 1000 checks per dataset, zero failures observed"},
	}
	var results []ReliabilityResult
	for di, ds := range datasets {
		res := kron.ToStream(ds.edges, ds.n, kron.StreamOptions{ChurnFraction: 0.05}, o.Seed+uint64(di))
		failures := 0
		for trial := 0; trial < o.Trials; trial++ {
			eng, err := core.NewEngine(core.Config{
				NumNodes: ds.n,
				Seed:     o.Seed + uint64(di*1000+trial)*7919,
			})
			if err != nil {
				return nil, nil, err
			}
			ref := newMatRef(ds.n)
			// Check at a trial-dependent prefix so checks cover the whole
			// stream, then always at the end.
			checkpoint := (trial + 1) * len(res.Updates) / (o.Trials + 1)
			ok := true
			for i, u := range res.Updates {
				if err := eng.Update(u); err != nil {
					eng.Close()
					return nil, nil, err
				}
				ref.apply(u)
				if i == checkpoint {
					if !checkOnce(eng, ref) {
						ok = false
					}
				}
			}
			if !checkOnce(eng, ref) {
				ok = false
			}
			if !ok {
				failures++
			}
			eng.Close()
		}
		results = append(results, ReliabilityResult{Dataset: ds.name, Checks: 2 * o.Trials, Failures: failures})
		t.Rows = append(t.Rows, []string{ds.name, fmt.Sprintf("%d", 2*o.Trials), fmt.Sprintf("%d", failures)})
		o.logf("reliability: %s done (%d failures)", ds.name, failures)
	}
	return t, results, nil
}

func checkOnce(eng *core.Engine, ref *matRef) bool {
	rep, count, err := eng.ConnectedComponents()
	if err != nil {
		return false
	}
	wantRep, wantCount := ref.components()
	return count == wantCount && samePartition(rep, wantRep)
}
