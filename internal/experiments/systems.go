package experiments

import (
	"fmt"
	"time"

	"graphzeppelin/internal/baseline/aspenlike"
	"graphzeppelin/internal/baseline/terracelike"
	"graphzeppelin/internal/core"
	"graphzeppelin/internal/kron"
	"graphzeppelin/internal/stream"
)

// baselineBatchSize groups the interleaved stream into insert-only /
// delete-only batches for the batch-parallel baselines, as §6.2 does (the
// paper uses 1e6 on its testbed; scaled to our stream sizes).
const baselineBatchSize = 10000

// runGZ ingests every update of res into a fresh engine and returns the
// engine (still open, post-Drain) and the ingestion wall time.
func runGZ(res kron.Result, cfg core.Config) (*core.Engine, time.Duration, error) {
	cfg.NumNodes = res.NumNodes
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	for _, u := range res.Updates {
		if err := eng.Update(u); err != nil {
			eng.Close()
			return nil, 0, err
		}
	}
	if err := eng.Drain(); err != nil {
		eng.Close()
		return nil, 0, err
	}
	return eng, time.Since(start), nil
}

// runAspen ingests res into the Aspen-like baseline using batched inserts
// and deletes.
func runAspen(res kron.Result) (*aspenlike.Graph, time.Duration) {
	g := aspenlike.New(res.NumNodes)
	start := time.Now()
	var ins, del []stream.Edge
	flush := func() {
		if len(ins) > 0 {
			g.InsertBatch(ins)
			ins = ins[:0]
		}
		if len(del) > 0 {
			g.DeleteBatch(del)
			del = del[:0]
		}
	}
	for _, u := range res.Updates {
		if u.Type == stream.Insert {
			if len(del) > 0 {
				flush()
			}
			ins = append(ins, u.Edge)
			if len(ins) >= baselineBatchSize {
				flush()
			}
		} else {
			if len(ins) > 0 {
				flush()
			}
			del = append(del, u.Edge)
			if len(del) >= baselineBatchSize {
				flush()
			}
		}
	}
	flush()
	return g, time.Since(start)
}

// runTerrace ingests res into the Terrace-like baseline: batched inserts,
// individual deletes (Terrace has no batch-delete path; paper footnote 2).
func runTerrace(res kron.Result) (*terracelike.Graph, time.Duration) {
	g := terracelike.New(res.NumNodes)
	start := time.Now()
	var ins []stream.Edge
	for _, u := range res.Updates {
		if u.Type == stream.Insert {
			ins = append(ins, u.Edge)
			if len(ins) >= baselineBatchSize {
				g.InsertBatch(ins)
				ins = ins[:0]
			}
		} else {
			if len(ins) > 0 {
				g.InsertBatch(ins)
				ins = ins[:0]
			}
			g.Apply(u)
		}
	}
	g.InsertBatch(ins)
	return g, time.Since(start)
}

// Table10 regenerates Figure 10: the dimensions of every dataset used in
// the evaluation, at this reproduction's scales.
func Table10(o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:     "table10",
		Title:  "Dataset dimensions (scaled-down substitutes; see DESIGN.md §3)",
		Header: []string{"name", "nodes", "edges", "stream updates"},
	}
	add := func(name string, n uint32, edges []stream.Edge) {
		res := kron.ToStream(edges, n, kron.StreamOptions{}, o.Seed+7)
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", len(edges)),
			fmt.Sprintf("%d", len(res.Updates)),
		})
		o.logf("table10: %s done", name)
	}
	for scale := 8; scale <= o.MaxScale; scale++ {
		res := KronStream(scale, o.Seed)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("kron%d", scale),
			fmt.Sprintf("%d", res.NumNodes),
			fmt.Sprintf("%d", len(res.FinalEdges)),
			fmt.Sprintf("%d", len(res.Updates)),
		})
	}
	add("p2p-gnutella*", 6300, kron.GnutellaLike(6300, 15000, o.Seed))
	add("rec-amazon*", 9200, kron.AmazonLike(9200, o.Seed))
	add("google-plus*", 4000, kron.GooglePlusLike(4000, 16, o.Seed))
	add("web-uk*", 4000, kron.WebUKLike(4000, 16, 0.3, 0.5, o.Seed))
	t.Notes = append(t.Notes, "*synthetic stand-in with the structural family of the original dataset")
	return t
}

// Fig11 regenerates Figure 11: memory footprint of each system after
// ingesting dense Kronecker streams of growing scale. The paper samples
// RSS via top; we account data-structure bytes directly.
func Fig11(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig11",
		Title:  "Space used by each system on dense Kronecker streams",
		Header: []string{"dataset", "Aspen-like", "Terrace-like", "GraphZeppelin", "GZ/Aspen"},
		Notes: []string{
			"expected shape: explicit representations grow with E (~quadratic in V for",
			"dense streams); GraphZeppelin grows with V·log^2 V, so the GZ/Aspen ratio",
			"falls as scale rises (paper: crossover between kron13 and kron15 given",
			"32-64 GB budgets; laptop scales sit left of the crossover, as the paper's",
			"own kron13 row does at ratio ~1770x)",
		},
	}
	type point struct {
		scale   int
		gz, asp float64
	}
	var pts []point
	for scale := 8; scale <= o.MaxScale; scale++ {
		res := KronStream(scale, o.Seed)
		asp, _ := runAspen(res)
		ter, _ := runTerrace(res)
		eng, _, err := runGZ(res, core.Config{Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		st := eng.Stats()
		gzBytes := st.MemoryBytes + st.DiskBytes
		eng.Close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("kron%d", scale),
			mib(asp.Bytes()),
			mib(ter.Bytes()),
			mib(gzBytes),
			fmt.Sprintf("%.1fx", float64(gzBytes)/float64(asp.Bytes())),
		})
		pts = append(pts, point{scale: scale, gz: float64(gzBytes), asp: float64(asp.Bytes())})
		o.logf("fig11: kron%d done", scale)
	}
	if len(pts) >= 2 {
		// Extrapolate the crossover: GZ ≈ a·V·log2(V)^2 and Aspen ≈ b·V^2
		// on dense streams; solve a·log2(V)^2 = b·V for V.
		last := pts[len(pts)-1]
		v := float64(uint64(1) << last.scale)
		a := last.gz / (v * float64(last.scale*last.scale))
		bb := last.asp / (v * v)
		for s := last.scale; s <= 40; s++ {
			vs := float64(uint64(1) << s)
			if a*vs*float64(s*s) <= bb*vs*vs {
				t.Notes = append(t.Notes, fmt.Sprintf(
					"extrapolated crossover at kron%d (V=2^%d), matching the paper's 2^15-2^17 given its constants", s, s))
				break
			}
		}
	}
	return t, nil
}

// Fig13 regenerates Figure 13: in-RAM ingestion rate of each system on
// dense Kronecker streams.
func Fig13(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig13",
		Title:  "In-RAM ingestion rate (updates/second)",
		Header: []string{"dataset", "Aspen-like", "Terrace-like", "GraphZeppelin", "Terrace PMA moves/update"},
		Notes: []string{
			"regime note (DESIGN.md §3): the paper's Figure 13 is measured with 46",
			"threads on billion-edge streams, where GraphZeppelin's embarrassingly",
			"parallel sketch updates win and the baselines' working sets overflow cache;",
			"GZ's single-thread rate (~0.16M/s in the paper's Figure 14) is below",
			"Aspen's there too, as here on a 1-vCPU host with cache-resident baselines.",
			"What must and does hold at this scale: GZ's rate is flat in density",
			"(O(log^2 V)/update) while the explicit systems' per-update work grows",
			"with the graph (Aspen-like rate falls with scale; Terrace's shared-PMA",
			"shifting work is reported in the last column)",
		},
	}
	for scale := 8; scale <= o.MaxScale; scale++ {
		res := KronStream(scale, o.Seed)
		n := len(res.Updates)
		_, aspenDur := runAspen(res)
		ter, terraceDur := runTerrace(res)
		eng, gzDur, err := runGZ(res, core.Config{Seed: o.Seed, Workers: 2})
		if err != nil {
			return nil, err
		}
		eng.Close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("kron%d", scale),
			rate(n, aspenDur),
			rate(n, terraceDur),
			rate(n, gzDur),
			fmt.Sprintf("%.1f", float64(ter.PMAMoves())/float64(n)),
		})
		o.logf("fig13: kron%d done", scale)
	}
	return t, nil
}
