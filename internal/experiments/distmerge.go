package experiments

import (
	"bytes"
	"fmt"
	"time"

	"graphzeppelin/internal/core"
	"graphzeppelin/internal/kron"
)

// DistributedMerge realizes the distributed-ingestion direction of the
// paper's conclusion as a measured sweep: the stream is split round-robin
// into K disjoint shards, each ingested by an independent engine (standing
// in for K machines), every shard ships its GZE3 checkpoint, and one
// aggregator merges them all. The table reports checkpoint size, write and
// merge rates, the ingest stall of the low-stall snapshot, and — the
// linearity guarantee — that the merged engine's Connected answers are
// identical to a single engine that ingested the whole stream.
func DistributedMerge(o Options) (*Table, error) {
	o = o.withDefaults()
	scale := o.MaxScale - 1
	if scale < 8 {
		scale = 8
	}
	res := KronStream(scale, o.Seed)
	n := len(res.Updates)
	t := &Table{
		ID:     "distmerge",
		Title:  fmt.Sprintf("Distributed shard merge via checkpoints (kron%d)", scale),
		Header: []string{"shards", "ckpt total", "write rate", "stall", "merge rate", "vs reference"},
		Notes: []string{
			"each shard ingests a disjoint 1/K of the stream; checkpoints merge into one engine",
			"write/merge rate = checkpoint MiB per second of WriteCheckpoint/MergeCheckpoint wall time",
			"stall = max time ingestion was quiesced by a shard's snapshot (drain + seal, not the stream write)",
			"vs reference = merged engine's component partition equals a single engine over the whole stream",
		},
	}

	// Single-engine reference over the whole stream.
	ref, _, err := runGZ(res, core.Config{Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	refRep, refCount, err := ref.ConnectedComponents()
	ref.Close()
	if err != nil {
		return nil, err
	}

	for _, k := range []int{2, 4, 8} {
		row, err := runMergeTrial(res, o, k, refRep, refCount)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
		o.logf("distmerge: shards=%d done (%d updates)", k, n)
	}
	return t, nil
}

// runMergeTrial ingests the stream round-robin into k shard engines,
// ships their checkpoints into a fresh aggregator, and returns the
// measured table row. Engines live only for the trial.
func runMergeTrial(res kron.Result, o Options, k int, refRep []uint32, refCount int) ([]string, error) {
	shards := make([]*core.Engine, k)
	defer func() {
		for _, eng := range shards {
			if eng != nil {
				eng.Close()
			}
		}
	}()
	for i := range shards {
		eng, err := core.NewEngine(core.Config{NumNodes: res.NumNodes, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		shards[i] = eng
	}
	for i, u := range res.Updates {
		if err := shards[i%k].Update(u); err != nil {
			return nil, err
		}
	}

	var ckpts []*bytes.Buffer
	var totalBytes int64
	var writeDur time.Duration
	var maxStall uint64
	for _, eng := range shards {
		var buf bytes.Buffer
		start := time.Now()
		if err := eng.WriteCheckpoint(&buf); err != nil {
			return nil, err
		}
		writeDur += time.Since(start)
		if st := eng.Stats().CheckpointStallNanos; st > maxStall {
			maxStall = st
		}
		totalBytes += int64(buf.Len())
		ckpts = append(ckpts, &buf)
	}

	agg, err := core.NewEngine(core.Config{NumNodes: res.NumNodes, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	defer agg.Close()
	mergeStart := time.Now()
	for _, buf := range ckpts {
		if err := agg.MergeCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			return nil, err
		}
	}
	mergeDur := time.Since(mergeStart)

	rep, count, err := agg.ConnectedComponents()
	if err != nil {
		return nil, err
	}
	match := "MATCH"
	if count != refCount || !samePartition(rep, refRep) {
		match = "MISMATCH"
	}

	mib := float64(totalBytes) / (1 << 20)
	return []string{
		fmt.Sprintf("%d", k),
		fmt.Sprintf("%.1f MiB", mib),
		fmt.Sprintf("%.1f MiB/s", mib/writeDur.Seconds()),
		fmt.Sprintf("%.2f ms", float64(maxStall)/1e6),
		fmt.Sprintf("%.1f MiB/s", mib/mergeDur.Seconds()),
		match,
	}, nil
}
