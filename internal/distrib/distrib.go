// Package distrib realizes the distributed-ingestion direction of the
// paper's conclusion: "since GraphZeppelin's sketches can be updated
// independently, we believe that they can be partitioned throughout a
// distributed cluster without sacrificing stream ingestion rate."
//
// A Cluster fans the update stream out to independent shard engines (here
// goroutines with channels standing in for cluster workers; each shard is
// a complete engine over the full node universe). Because sketches are
// linear, any partition of the stream works — at query time the shards'
// sketch states are XOR-merged into an aggregator engine that answers for
// the whole stream. The merge is exactly the checkpoint-merge path, so
// shards could equally live on other machines and ship checkpoints.
package distrib

import (
	"errors"
	"fmt"
	"sync"

	"graphzeppelin/internal/core"
	"graphzeppelin/internal/gzserve"
	"graphzeppelin/internal/stream"
)

// Config parameterizes a Cluster.
type Config struct {
	// NumNodes is the node-universe size (required).
	NumNodes uint32
	// Shards is the number of shard engines (default 2).
	Shards int
	// Seed drives all sketch hashing. Every shard must share it so the
	// sketches merge; each shard's engine is created with this seed.
	Seed uint64
	// Engine carries per-shard engine settings (workers, buffering);
	// NumNodes and Seed within it are overwritten.
	Engine core.Config
	// QueueDepth is the per-shard update channel depth (default 1024).
	QueueDepth int
}

// Cluster is a set of shard engines ingesting one logical stream.
// Routing and query-time aggregation are the same implementations the
// networked gzserve cluster uses — a round-robin gzserve.Partitioner
// and the checkpoint-merge gzserve.Aggregate — so the in-process
// cluster is exactly the networked topology with channels in place of
// HTTP.
type Cluster struct {
	cfg    Config
	shards []*shard
	part   *gzserve.Partitioner
	closed bool
}

// shardMsg is either a stream update or a barrier: the query path sends a
// barrier and waits on it to know the shard has applied everything before
// it (the distributed analogue of the paper's cleanup()).
type shardMsg struct {
	update  stream.Update
	barrier chan struct{}
}

type shard struct {
	eng *core.Engine
	ch  chan shardMsg
	wg  sync.WaitGroup
	err error
	mu  sync.Mutex
}

// New creates a cluster per cfg.
func New(cfg Config) (*Cluster, error) {
	if cfg.NumNodes < 2 {
		return nil, errors.New("distrib: NumNodes must be at least 2")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	part, err := gzserve.NewRoundRobinPartitioner(cfg.Shards)
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, part: part}
	for i := 0; i < cfg.Shards; i++ {
		ec := cfg.Engine
		ec.NumNodes = cfg.NumNodes
		ec.Seed = cfg.Seed
		eng, err := core.NewEngine(ec)
		if err != nil {
			c.Close()
			return nil, err
		}
		s := &shard{eng: eng, ch: make(chan shardMsg, cfg.QueueDepth)}
		s.wg.Add(1)
		go s.run()
		c.shards = append(c.shards, s)
	}
	return c, nil
}

func (s *shard) run() {
	defer s.wg.Done()
	for m := range s.ch {
		if m.barrier != nil {
			close(m.barrier)
			continue
		}
		if err := s.eng.Update(m.update); err != nil {
			s.mu.Lock()
			if s.err == nil {
				s.err = err
			}
			s.mu.Unlock()
		}
	}
}

// Update routes one stream update to a shard via the shared partitioner
// (round-robin policy; any routing is correct by linearity).
func (c *Cluster) Update(u stream.Update) error {
	s := c.shards[c.part.Part(u)]
	s.ch <- shardMsg{update: u}
	s.mu.Lock()
	err := s.err
	s.mu.Unlock()
	return err
}

// drainShards waits for every shard to finish its queued updates.
func (c *Cluster) drainShards() error {
	for i, s := range c.shards {
		barrier := make(chan struct{})
		s.ch <- shardMsg{barrier: barrier}
		<-barrier
		if err := s.eng.Drain(); err != nil {
			return fmt.Errorf("distrib: shard %d: %w", i, err)
		}
		s.mu.Lock()
		err := s.err
		s.mu.Unlock()
		if err != nil {
			return fmt.Errorf("distrib: shard %d: %w", i, err)
		}
	}
	return nil
}

// SpanningForest merges all shards into an aggregator and answers for the
// whole stream. Shards keep their state and continue ingesting afterwards.
func (c *Cluster) SpanningForest() ([]stream.Edge, error) {
	agg, err := c.aggregate()
	if err != nil {
		return nil, err
	}
	defer agg.Close()
	return agg.SpanningForest()
}

// ConnectedComponents merges all shards and returns the global partition.
func (c *Cluster) ConnectedComponents() ([]uint32, int, error) {
	agg, err := c.aggregate()
	if err != nil {
		return nil, 0, err
	}
	defer agg.Close()
	return agg.ConnectedComponents()
}

// aggregate builds a fresh engine holding the XOR of all shards' sketches
// by shipping each shard's checkpoint through the shared merge-based
// aggregation — the same path the networked coordinator takes.
func (c *Cluster) aggregate() (*core.Engine, error) {
	if err := c.drainShards(); err != nil {
		return nil, err
	}
	ec := c.cfg.Engine
	ec.NumNodes = c.cfg.NumNodes
	ec.Seed = c.cfg.Seed
	sources := make([]gzserve.CheckpointSource, len(c.shards))
	for i, s := range c.shards {
		sources[i] = gzserve.EngineSource(s.eng)
	}
	agg, err := gzserve.Aggregate(ec, sources)
	if err != nil {
		return nil, fmt.Errorf("distrib: %w", err)
	}
	return agg, nil
}

// Stats returns per-shard engine statistics.
func (c *Cluster) Stats() []core.Stats {
	out := make([]core.Stats, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.eng.Stats()
	}
	return out
}

// Close stops the shard workers and releases their engines.
func (c *Cluster) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	var first error
	for _, s := range c.shards {
		close(s.ch)
		s.wg.Wait()
		if err := s.eng.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
