package distrib

import (
	"math/rand/v2"
	"testing"

	"graphzeppelin/internal/dsu"
	"graphzeppelin/internal/kron"
	"graphzeppelin/internal/stream"
)

func TestClusterMatchesExact(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		c, err := New(Config{NumNodes: 64, Shards: shards, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(uint64(shards), 2))
		exact := dsu.New(64)
		seen := map[stream.Edge]bool{}
		for i := 0; i < 1200; i++ {
			e := stream.Edge{U: uint32(rng.Uint64N(64)), V: uint32(rng.Uint64N(64))}.Normalize()
			if e.U == e.V || seen[e] {
				continue
			}
			seen[e] = true
			if err := c.Update(stream.Update{Edge: e, Type: stream.Insert}); err != nil {
				t.Fatal(err)
			}
			exact.Union(e.U, e.V)
		}
		_, count, err := c.ConnectedComponents()
		if err != nil {
			t.Fatal(err)
		}
		if count != exact.Count() {
			t.Fatalf("shards=%d: count = %d, want %d", shards, count, exact.Count())
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestClusterHandlesDeletions(t *testing.T) {
	c, err := New(Config{NumNodes: 16, Shards: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Insert a path, then cut it in the middle; the insert and the delete
	// of the cut edge land on different shards (round robin), exercising
	// cross-shard cancellation.
	for u := uint32(0); u < 15; u++ {
		if err := c.Update(stream.Update{Edge: stream.Edge{U: u, V: u + 1}, Type: stream.Insert}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Update(stream.Update{Edge: stream.Edge{U: 7, V: 8}, Type: stream.Delete}); err != nil {
		t.Fatal(err)
	}
	rep, count, err := c.ConnectedComponents()
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if rep[0] != rep[7] || rep[8] != rep[15] || rep[7] == rep[8] {
		t.Fatal("partition wrong after cross-shard deletion")
	}
}

func TestClusterQueriesInterleave(t *testing.T) {
	c, err := New(Config{NumNodes: 32, Shards: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	exact := dsu.New(32)
	rng := rand.New(rand.NewPCG(7, 8))
	seen := map[stream.Edge]bool{}
	for round := 0; round < 5; round++ {
		for i := 0; i < 40; i++ {
			e := stream.Edge{U: uint32(rng.Uint64N(32)), V: uint32(rng.Uint64N(32))}.Normalize()
			if e.U == e.V || seen[e] {
				continue
			}
			seen[e] = true
			if err := c.Update(stream.Update{Edge: e, Type: stream.Insert}); err != nil {
				t.Fatal(err)
			}
			exact.Union(e.U, e.V)
		}
		_, count, err := c.ConnectedComponents()
		if err != nil {
			t.Fatal(err)
		}
		if count != exact.Count() {
			t.Fatalf("round %d: count = %d, want %d", round, count, exact.Count())
		}
	}
}

func TestClusterKronStream(t *testing.T) {
	edges := kron.DenseKronecker(6, 31)
	res := kron.ToStream(edges, 1<<6, kron.StreamOptions{}, 32)
	c, err := New(Config{NumNodes: res.NumNodes, Shards: 4, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, u := range res.Updates {
		if err := c.Update(u); err != nil {
			t.Fatal(err)
		}
	}
	exact := dsu.New(int(res.NumNodes))
	for _, e := range res.FinalEdges {
		exact.Union(e.U, e.V)
	}
	_, count, err := c.ConnectedComponents()
	if err != nil {
		t.Fatal(err)
	}
	if count != exact.Count() {
		t.Fatalf("count = %d, want %d", count, exact.Count())
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := New(Config{NumNodes: 1}); err == nil {
		t.Fatal("1-node cluster accepted")
	}
}

func TestClusterCloseIdempotent(t *testing.T) {
	c, err := New(Config{NumNodes: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
