// Command gzrun ingests a GZS1 stream file into GraphZeppelin and answers
// a connectivity query, printing ingestion rate, query latency, memory and
// I/O statistics — the per-run measurements behind the paper's system
// tables.
//
// Usage:
//
//	gzrun -stream kron12.gzs -workers 4
//	gzrun -stream kron12.gzs -disk /mnt/ssd -buffering tree
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"graphzeppelin"
	"graphzeppelin/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gzrun: ")
	var (
		path      = flag.String("stream", "", "GZS1 stream file (required)")
		workers   = flag.Int("workers", 1, "graph workers")
		shards    = flag.Int("shards", 0, "ingest shards (0 = one per worker)")
		buffering = flag.String("buffering", "leaf", "buffering: leaf, tree, none")
		factor    = flag.Float64("f", 0.5, "gutter size factor")
		disk      = flag.String("disk", "", "directory for on-disk sketches (empty = RAM)")
		seed      = flag.Uint64("seed", 1, "sketch seed")
		queries   = flag.Int("queries", 1, "number of evenly spaced connectivity queries")
	)
	flag.Parse()
	if *path == "" {
		log.Fatal("-stream is required")
	}

	f, err := os.Open(*path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := stream.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}
	hdr := r.Header()
	fmt.Printf("stream: %d nodes, %d updates\n", hdr.NumNodes, hdr.Count)

	opts := []graphzeppelin.Option{
		graphzeppelin.WithSeed(*seed),
		graphzeppelin.WithWorkers(*workers),
		graphzeppelin.WithBufferFactor(*factor),
	}
	if *shards > 0 {
		opts = append(opts, graphzeppelin.WithShards(*shards))
	}
	switch *buffering {
	case "leaf":
	case "tree":
		opts = append(opts, graphzeppelin.WithBuffering(graphzeppelin.GutterTree))
	case "none":
		opts = append(opts, graphzeppelin.WithBuffering(graphzeppelin.Unbuffered))
	default:
		log.Fatalf("unknown buffering %q", *buffering)
	}
	if *disk != "" {
		opts = append(opts, graphzeppelin.WithSketchesOnDisk(*disk), graphzeppelin.WithDir(*disk))
	}
	g, err := graphzeppelin.New(hdr.NumNodes, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()

	every := hdr.Count
	if *queries > 1 {
		every = hdr.Count / uint64(*queries)
	}
	start := time.Now()
	var ingested uint64
	for {
		u, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := g.Apply(u); err != nil {
			log.Fatal(err)
		}
		ingested++
		if *queries > 1 && ingested%every == 0 && ingested < hdr.Count {
			qs := time.Now()
			_, count, err := g.ConnectedComponents()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  query @ %3.0f%%: %d components (%.3fs)\n",
				100*float64(ingested)/float64(hdr.Count), count, time.Since(qs).Seconds())
		}
	}
	ingestDur := time.Since(start)

	qs := time.Now()
	_, count, err := g.ConnectedComponents()
	if err != nil {
		log.Fatal(err)
	}
	qDur := time.Since(qs)

	st := g.Stats()
	fmt.Printf("ingested %d updates in %.3fs (%.2f M updates/s)\n",
		ingested, ingestDur.Seconds(), float64(ingested)/ingestDur.Seconds()/1e6)
	fmt.Printf("final query: %d components in %.3fs\n", count, qDur.Seconds())
	fmt.Printf("memory %.1f MiB, disk %.1f MiB, %d batches across %d shards %v\n",
		float64(st.MemoryBytes)/(1<<20), float64(st.DiskBytes)/(1<<20), st.Batches, st.Shards, st.ShardBatches)
	if st.SketchIO.TotalBlocks() > 0 {
		fmt.Printf("sketch I/O: %d read blocks, %d write blocks\n",
			st.SketchIO.ReadBlocks, st.SketchIO.WriteBlocks)
	}
	if st.BufferIO.TotalBlocks() > 0 {
		fmt.Printf("gutter I/O: %d read blocks, %d write blocks\n",
			st.BufferIO.ReadBlocks, st.BufferIO.WriteBlocks)
	}
}
