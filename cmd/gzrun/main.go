// Command gzrun ingests a GZS1 stream file into any of the package's
// sketch structures and answers that structure's query, printing
// ingestion rate, query latency, memory and I/O statistics — the per-run
// measurements behind the paper's system tables.
//
// Every structure is driven through the shared StreamSketch interface, so
// one ingest loop serves them all; -producers splits ingestion across
// concurrent producer goroutines (per-producer Ingestor sessions on a
// graph, shared ApplyBatch on the extensions).
//
// Usage:
//
//	gzrun -stream kron12.gzs -workers 4
//	gzrun -stream kron12.gzs -producers 4 -shards 4
//	gzrun -stream kron12.gzs -structure bipartite
//	gzrun -stream kron12.gzs -disk /mnt/ssd -buffering tree
//	gzrun -stream kron12.gzs -disk /mnt/ssd -cachebytes 67108864 -nodespergroup 16
//
// In disk mode the tiered store's knobs are exposed directly:
// -cachebytes budgets the write-back cache of decoded node groups
// (negative disables it, the per-slot RMW ablation) and -nodespergroup
// sets the group-slot size; the final stats dump prints the cache
// hit/miss/eviction counters.
//
// Durability and distributed merge: -checkpoint writes the structure's
// sketch state after the run (the low-stall GZE3/GZX1 snapshot);
// -restore starts a graph from a previous checkpoint file instead of
// empty (parallel section decode); -merge XORs shard checkpoints written
// elsewhere into the structure before the final query, so K machines can
// each ingest a disjoint slice of a stream and one gzrun answers for the
// union:
//
//	gzrun -stream shardA.gzs -checkpoint a.gze3
//	gzrun -stream shardB.gzs -merge a.gze3
//	gzrun -stream more.gzs -restore a.gze3 -checkpoint a2.gze3
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"graphzeppelin"
	"graphzeppelin/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gzrun: ")
	var (
		path       = flag.String("stream", "", "GZS1 stream file (required)")
		structure  = flag.String("structure", "graph", "structure: graph, bipartite, kforests, msf")
		workers    = flag.Int("workers", 1, "graph workers")
		shards     = flag.Int("shards", 0, "ingest shards (0 = one per worker)")
		producers  = flag.Int("producers", 1, "concurrent producer goroutines")
		batch      = flag.Int("batch", 4096, "updates per ApplyBatch call (1 = per-update Apply)")
		buffering  = flag.String("buffering", "leaf", "buffering: leaf, tree, none")
		factor     = flag.Float64("f", 0.5, "gutter size factor")
		disk       = flag.String("disk", "", "directory for on-disk sketches (empty = RAM)")
		cacheB     = flag.Int64("cachebytes", 0, "disk-mode write-back cache budget in bytes (0 = 32 MiB default, negative = uncached per-slot RMW)")
		npg        = flag.Int("nodespergroup", 0, "disk-mode node-group slot size in sketches (0 = sized to the device block)")
		seed       = flag.Uint64("seed", 1, "sketch seed")
		queries    = flag.Int("queries", 1, "evenly spaced connectivity queries (graph, single producer)")
		pointQ     = flag.Int("pointqueries", 0, "random point-query pairs served after ingestion via ConnectedMany (graph)")
		k          = flag.Int("k", 2, "layers for -structure kforests")
		maxWeight  = flag.Int("maxweight", 4, "max edge weight for -structure msf")
		ckptPath   = flag.String("checkpoint", "", "write a checkpoint of the final sketch state to this file")
		restore    = flag.String("restore", "", "restore the graph before ingesting (graph only): one checkpoint file, or a comma-separated chain \"base.gze,delta1.gzd,...\" applied in order")
		deltaThr   = flag.Float64("deltathreshold", 0, "dirty-node fraction above which a delta checkpoint seal falls back to full (0 = 0.20 default, negative disables delta checkpoints)")
		walDir     = flag.String("wal", "", "write-ahead log directory: log every accepted batch before it enters the pipeline (graph only)")
		fsync      = flag.String("fsync", "batch", "WAL fsync policy: batch, interval, off")
		fsyncEvery = flag.Duration("fsyncinterval", 0, "WAL sync period for -fsync interval (0 = 50ms default)")
		walSegB    = flag.Int64("walsegbytes", 0, "WAL segment rotation threshold in bytes (0 = 8 MiB default)")
		mergeList  = flag.String("merge", "", "comma-separated checkpoint files merged in after ingestion, before the query")
		noRebal    = flag.Bool("norebalance", false, "disable the skew-aware shard rebalancer (graph)")
		noDelta    = flag.Bool("nodeltaquery", false, "disable incremental query maintenance (every cache miss runs a from-scratch Boruvka)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *path == "" {
		log.Fatal("-stream is required")
	}
	if *producers < 1 || *batch < 1 {
		log.Fatal("-producers and -batch must be at least 1")
	}
	if *restore != "" && *structure != "graph" {
		log.Fatal("-restore is only supported with -structure graph")
	}
	if *walDir != "" && *structure != "graph" {
		log.Fatal("-wal is only supported with -structure graph")
	}

	// Profiles flush on normal completion; a log.Fatal error path exits
	// without them, which is fine — a partial profile of a failed run is
	// not worth complicating every error site for.
	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			pf, err := os.Create(*memProfile)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer pf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(pf); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}

	f, err := os.Open(*path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := stream.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}
	hdr := r.Header()
	fmt.Printf("stream: %d nodes, %d updates\n", hdr.NumNodes, hdr.Count)

	opts := []graphzeppelin.Option{
		graphzeppelin.WithSeed(*seed),
		graphzeppelin.WithWorkers(*workers),
		graphzeppelin.WithBufferFactor(*factor),
	}
	if *shards > 0 {
		opts = append(opts, graphzeppelin.WithShards(*shards))
	}
	if *noRebal {
		opts = append(opts, graphzeppelin.WithRebalancing(false))
	}
	if *noDelta {
		opts = append(opts, graphzeppelin.WithDeltaQueries(false))
	}
	if *deltaThr != 0 {
		opts = append(opts, graphzeppelin.WithDeltaCheckpointThreshold(*deltaThr))
	}
	switch *buffering {
	case "leaf":
	case "tree":
		opts = append(opts, graphzeppelin.WithBuffering(graphzeppelin.GutterTree))
	case "none":
		opts = append(opts, graphzeppelin.WithBuffering(graphzeppelin.Unbuffered))
	default:
		log.Fatalf("unknown buffering %q", *buffering)
	}
	if *disk != "" {
		opts = append(opts, graphzeppelin.WithSketchesOnDisk(*disk), graphzeppelin.WithDir(*disk))
	}
	if *cacheB != 0 {
		opts = append(opts, graphzeppelin.WithCacheBytes(*cacheB))
	}
	if *npg > 0 {
		opts = append(opts, graphzeppelin.WithNodesPerGroup(*npg))
	}
	if *walDir != "" {
		policy, err := graphzeppelin.ParseFsyncPolicy(*fsync)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, graphzeppelin.WithWAL(*walDir), graphzeppelin.WithFsyncPolicy(policy))
		if *fsyncEvery > 0 {
			opts = append(opts, graphzeppelin.WithFsyncInterval(*fsyncEvery))
		}
		if *walSegB > 0 {
			opts = append(opts, graphzeppelin.WithWALSegmentBytes(*walSegB))
		}
	}

	// Build the selected structure; all of them ingest through the one
	// StreamSketch code path below. report runs the structure's query.
	var (
		sk     graphzeppelin.StreamSketch
		graph  *graphzeppelin.Graph // non-nil iff -structure graph
		report func(sk graphzeppelin.StreamSketch) error
	)
	switch *structure {
	case "graph":
		var g *graphzeppelin.Graph
		var err error
		if *restore != "" {
			start := time.Now()
			chain := strings.Split(*restore, ",")
			g, err = graphzeppelin.OpenCheckpoint(chain[0], opts...)
			if err != nil {
				log.Fatal(err)
			}
			for _, p := range chain[1:] {
				f, err := os.Open(p)
				if err != nil {
					log.Fatal(err)
				}
				err = g.ApplyDeltaCheckpoint(f)
				f.Close()
				if err != nil {
					log.Fatalf("applying delta %s: %v", p, err)
				}
			}
			if g.NumNodes() != hdr.NumNodes {
				log.Fatalf("checkpoint %s is over %d nodes, stream over %d", chain[0], g.NumNodes(), hdr.NumNodes)
			}
			if len(chain) > 1 {
				fmt.Printf("restored %s + %d deltas (%d nodes) in %.3fs\n", chain[0], len(chain)-1, g.NumNodes(), time.Since(start).Seconds())
			} else {
				fmt.Printf("restored %s (%d nodes) in %.3fs\n", chain[0], g.NumNodes(), time.Since(start).Seconds())
			}
		} else {
			g, err = graphzeppelin.New(hdr.NumNodes, opts...)
			if err != nil {
				log.Fatal(err)
			}
		}
		graph = g
		sk = g
		report = func(graphzeppelin.StreamSketch) error {
			_, count, err := g.ConnectedComponents()
			if err != nil {
				return err
			}
			fmt.Printf("final query: %d components", count)
			return nil
		}
	case "bipartite":
		t, err := graphzeppelin.NewBipartiteTester(hdr.NumNodes, opts...)
		if err != nil {
			log.Fatal(err)
		}
		sk = t
		report = func(graphzeppelin.StreamSketch) error {
			bip, err := t.IsBipartite()
			if err != nil {
				return err
			}
			fmt.Printf("final query: bipartite = %v", bip)
			return nil
		}
	case "kforests":
		p, err := graphzeppelin.NewForestPeeler(*k, hdr.NumNodes, opts...)
		if err != nil {
			log.Fatal(err)
		}
		sk = p
		report = func(graphzeppelin.StreamSketch) error {
			lambda, err := p.EdgeConnectivity()
			if err != nil {
				return err
			}
			fmt.Printf("final query: edge connectivity min(k=%d, λ) = %d", *k, lambda)
			return nil
		}
	case "msf":
		m, err := graphzeppelin.NewMSFWeightSketch(*maxWeight, hdr.NumNodes, opts...)
		if err != nil {
			log.Fatal(err)
		}
		sk = m
		report = func(graphzeppelin.StreamSketch) error {
			w, err := m.Weight()
			if err != nil {
				return err
			}
			fmt.Printf("final query: MSF weight = %d (unit weights)", w)
			return nil
		}
	default:
		log.Fatalf("unknown structure %q", *structure)
	}
	defer sk.Close()

	start := time.Now()
	var ingested uint64
	if *producers == 1 {
		ingested, err = ingestSerial(r, sk, graph, hdr.Count, *batch, *queries)
	} else {
		ingested, err = ingestParallel(r, sk, graph, *producers, *batch)
	}
	if err != nil {
		log.Fatal(err)
	}
	ingestDur := time.Since(start)

	// Shard checkpoints written elsewhere merge in before the query: the
	// structure then answers for the union of every merged stream.
	if *mergeList != "" {
		for _, path := range strings.Split(*mergeList, ",") {
			path = strings.TrimSpace(path)
			if path == "" {
				continue
			}
			if err := mergeCheckpointFile(sk, path); err != nil {
				log.Fatal(err)
			}
		}
	}

	qs := time.Now()
	if err := report(sk); err != nil {
		log.Fatal(err)
	}
	fmt.Printf(" in %.3fs\n", time.Since(qs).Seconds())

	if *pointQ > 0 && graph != nil {
		if err := servePointQueries(graph, *pointQ, *seed, hdr.NumNodes); err != nil {
			log.Fatal(err)
		}
	}

	if *ckptPath != "" {
		cs := time.Now()
		size, err := writeCheckpointFile(sk, *ckptPath)
		if err != nil {
			log.Fatal(err)
		}
		stall := time.Duration(sk.Stats().CheckpointStallNanos)
		fmt.Printf("checkpoint: %.1f MiB to %s in %.3fs (ingest stalled %.3fms)\n",
			float64(size)/(1<<20), *ckptPath, time.Since(cs).Seconds(),
			float64(stall.Microseconds())/1000)
	}

	st := sk.Stats()
	fmt.Printf("ingested %d updates in %.3fs (%.2f M updates/s) with %d producer(s)\n",
		ingested, ingestDur.Seconds(), float64(ingested)/ingestDur.Seconds()/1e6, *producers)
	fmt.Printf("memory %.1f MiB, disk %.1f MiB, %d batches across %d shards %v\n",
		float64(st.MemoryBytes)/(1<<20), float64(st.DiskBytes)/(1<<20), st.Batches, st.Shards, st.ShardBatches)
	if st.SketchIO.TotalBlocks() > 0 {
		fmt.Printf("sketch I/O: %d read blocks, %d write blocks\n",
			st.SketchIO.ReadBlocks, st.SketchIO.WriteBlocks)
	}
	if c := st.SketchCache; c.Hits+c.Misses > 0 {
		fmt.Printf("sketch cache: %d hits, %d misses (%.1f%% hit rate), %d evictions, %d write-backs, %d groups (%.1f MiB) resident\n",
			c.Hits, c.Misses, 100*float64(c.Hits)/float64(c.Hits+c.Misses),
			c.Evictions, c.WriteBacks, c.CachedGroups, float64(c.CachedBytes)/(1<<20))
	}
	if st.DeltaQueries+st.DeltaFallbacks > 0 {
		fmt.Printf("delta queries: %d incremental, %d fallbacks to full, %d nodes dirty at exit\n",
			st.DeltaQueries, st.DeltaFallbacks, st.DirtyNodes)
	}
	if st.BufferIO.TotalBlocks() > 0 {
		fmt.Printf("gutter I/O: %d read blocks, %d write blocks\n",
			st.BufferIO.ReadBlocks, st.BufferIO.WriteBlocks)
	}
	if wst := st.WAL; wst.Appends > 0 {
		fmt.Printf("wal: %d appends (%.1f MiB) in %d group commits, %d fsyncs, %d segments (tail LSN %d, durable %d)\n",
			wst.Appends, float64(wst.Bytes)/(1<<20), wst.GroupCommits, wst.Fsyncs,
			wst.Segments, wst.TailLSN, wst.DurableLSN)
	}
}

// mergeCheckpointFile XORs one checkpoint file into the structure and
// reports the merge rate.
func mergeCheckpointFile(sk graphzeppelin.StreamSketch, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	start := time.Now()
	if err := sk.MergeCheckpoint(f); err != nil {
		return fmt.Errorf("merging %s: %w", path, err)
	}
	dur := time.Since(start)
	fmt.Printf("merged %s: %.1f MiB in %.3fs (%.1f MiB/s)\n",
		path, float64(st.Size())/(1<<20), dur.Seconds(),
		float64(st.Size())/(1<<20)/dur.Seconds())
	return nil
}

// writeCheckpointFile streams the structure's checkpoint to path and
// returns the byte size written.
func writeCheckpointFile(sk graphzeppelin.StreamSketch, path string) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	if err := sk.WriteCheckpoint(f); err != nil {
		f.Close()
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return 0, err
	}
	return st.Size(), f.Close()
}

// servePointQueries replays the post-ingestion serving workload: count
// random pairs answered first as one ConnectedMany batch, then via
// per-pair Connected calls. The graph is unchanged throughout, so after
// the first full query everything is served from the epoch cache —
// compare the two latencies against the final-query line above.
func servePointQueries(q graphzeppelin.PointQuerier, count int, seed uint64, numNodes uint32) error {
	pairs := stream.RandomPairs(numNodes, count, seed)
	start := time.Now()
	res, err := q.ConnectedMany(pairs)
	if err != nil {
		return err
	}
	batchDur := time.Since(start)
	connected := 0
	for _, ok := range res {
		if ok {
			connected++
		}
	}
	start = time.Now()
	for _, p := range pairs {
		if _, err := q.Connected(p.U, p.V); err != nil {
			return err
		}
	}
	singleDur := time.Since(start)
	fmt.Printf("point queries: %d pairs (%d connected); ConnectedMany %.3fms total, Connected %dns/query\n",
		count, connected, float64(batchDur.Microseconds())/1000,
		singleDur.Nanoseconds()/int64(count))
	return nil
}

// ingestSerial drives the whole stream from this goroutine in ApplyBatch
// chunks, optionally running evenly spaced connectivity queries (graph
// only). It returns the number of updates actually read, which for a
// truncated file can be below the header's count.
func ingestSerial(r *stream.Reader, sk graphzeppelin.StreamSketch, graph *graphzeppelin.Graph, count uint64, batch, queries int) (uint64, error) {
	every := uint64(0)
	if queries > 1 && graph != nil {
		every = count / uint64(queries) // 0 when queries > count: no interleaving
	}
	buf := make([]graphzeppelin.Update, 0, batch)
	var ingested uint64
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if err := sk.ApplyBatch(buf); err != nil {
			return err
		}
		buf = buf[:0]
		return nil
	}
	for {
		u, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return ingested, err
		}
		buf = append(buf, u)
		if len(buf) == cap(buf) {
			if err := flush(); err != nil {
				return ingested, err
			}
		}
		ingested++
		if every > 0 && ingested%every == 0 && ingested < count {
			if err := flush(); err != nil {
				return ingested, err
			}
			qs := time.Now()
			_, comps, err := graph.ConnectedComponents()
			if err != nil {
				return ingested, err
			}
			fmt.Printf("  query @ %3.0f%%: %d components (%.3fs)\n",
				100*float64(ingested)/float64(count), comps, time.Since(qs).Seconds())
		}
	}
	return ingested, flush()
}

// ingestParallel fans chunks of the stream out to producer goroutines.
// On a graph each producer ingests through its own Ingestor session; the
// extensions take ApplyBatch directly (their engines are internally
// synchronized). It returns the number of updates handed to producers.
func ingestParallel(r *stream.Reader, sk graphzeppelin.StreamSketch, graph *graphzeppelin.Graph, producers, batch int) (uint64, error) {
	chunks := make(chan []graphzeppelin.Update, 2*producers)
	errc := make(chan error, producers+1)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			apply := sk.ApplyBatch
			if graph != nil {
				ing, err := graph.NewIngestor()
				if err != nil {
					errc <- err
					return
				}
				defer ing.Close()
				apply = ing.ApplyBatch
			}
			failed := false
			for chunk := range chunks {
				if failed {
					continue // keep draining so the feeder never blocks
				}
				if err := apply(chunk); err != nil {
					errc <- err
					failed = true
				}
			}
		}()
	}
	buf := make([]graphzeppelin.Update, 0, batch)
	var ingested uint64
	for {
		u, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			errc <- err
			break
		}
		buf = append(buf, u)
		ingested++
		if len(buf) == cap(buf) {
			chunks <- buf
			buf = make([]graphzeppelin.Update, 0, batch)
		}
	}
	if len(buf) > 0 {
		chunks <- buf
	}
	close(chunks)
	wg.Wait()
	select {
	case err := <-errc:
		return ingested, err
	default:
		return ingested, nil
	}
}
