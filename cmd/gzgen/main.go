// Command gzgen generates benchmark graph streams in the GZS1 binary
// format: dense Graph500-style Kronecker graphs (the paper's kronNN
// datasets) or the synthetic stand-ins for its real-world datasets,
// converted to insert/delete streams with the Section 6.1 guarantees.
//
// Usage:
//
//	gzgen -kind kron -scale 12 -seed 1 -o kron12.gzs
//	gzgen -kind gnutella -nodes 63000 -o gnutella.gzs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"graphzeppelin/internal/kron"
	"graphzeppelin/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gzgen: ")
	var (
		kind   = flag.String("kind", "kron", "graph family: kron, gnutella, amazon, gplus, webuk")
		scale  = flag.Int("scale", 10, "kron: log2 of node count")
		nodes  = flag.Uint("nodes", 10000, "non-kron: node count")
		eper   = flag.Int("edges-per-node", 8, "gplus: edges per node; gnutella: m = nodes*this/4")
		seed   = flag.Uint64("seed", 1, "generator seed")
		churn  = flag.Float64("churn", 0.03, "stream churn fraction")
		out    = flag.String("o", "", "output stream file (required)")
		noDisc = flag.Bool("no-disconnect", false, "skip disconnecting a node set (guarantee iii)")
	)
	flag.Parse()
	if *out == "" {
		log.Fatal("-o output file is required")
	}

	var edges []stream.Edge
	var n uint32
	switch *kind {
	case "kron":
		n = 1 << *scale
		edges = kron.DenseKronecker(*scale, *seed)
	case "gnutella":
		n = uint32(*nodes)
		edges = kron.GnutellaLike(n, int(*nodes)**eper/4, *seed)
	case "amazon":
		n = uint32(*nodes)
		edges = kron.AmazonLike(n, *seed)
	case "gplus":
		n = uint32(*nodes)
		edges = kron.GooglePlusLike(n, *eper, *seed)
	case "webuk":
		n = uint32(*nodes)
		edges = kron.WebUKLike(n, 16, 0.3, 0.5, *seed)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}

	opts := kron.StreamOptions{ChurnFraction: *churn}
	if *noDisc {
		opts.DisconnectNodes = -1
	}
	res := kron.ToStream(edges, n, opts, *seed+1)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	w, err := stream.NewWriter(f, res.NumNodes, uint64(len(res.Updates)))
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range res.Updates {
		if err := w.Write(u); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d nodes, %d final edges, %d stream updates, %d nodes disconnected\n",
		*out, res.NumNodes, len(res.FinalEdges), len(res.Updates), len(res.Disconnected))
}
