// Command gzserve runs one process of a networked GraphZeppelin
// cluster. A worker owns a node-range partition of the update stream: a
// full engine over the shared node universe that ingests whatever the
// coordinator routes to it and serves batch-ingest, checkpoint, info
// and stats endpoints. A coordinator partitions incoming edge batches
// by node range across its workers, pipelines the sends with bounded
// in-flight windows and retry/backoff, and answers global connectivity
// queries by merging the workers' GZE3 checkpoints into an aggregator
// engine.
//
// A 2-worker localhost cluster:
//
//	gzserve -mode worker -listen 127.0.0.1:7001 -nodes 1024 -seed 7 &
//	gzserve -mode worker -listen 127.0.0.1:7002 -nodes 1024 -seed 7 &
//	gzserve -mode coordinator -listen 127.0.0.1:7000 -nodes 1024 -seed 7 \
//	        -workers http://127.0.0.1:7001,http://127.0.0.1:7002
//
// Drive it with framed POSTs to the coordinator's /v1/ingest, then
// POST /v1/refresh and GET /v1/components (see internal/gzserve for the
// GZW1 frame layout, or examples/distributed for a complete driver).
//
// With -state-dir a worker is durable: every acked ingest batch is in a
// write-ahead log under the directory before the ack leaves (fsync
// policy per -fsync), -checkpoint-interval bounds the log with periodic
// local checkpoints, and a worker restarted after a crash — same
// -state-dir — auto-recovers its engine and its ingest dedup gate
// before serving, so coordinator retries of batches the dead process
// acked are deduplicated instead of double-applied:
//
//	gzserve -mode worker -listen 127.0.0.1:7001 -nodes 1024 -seed 7 \
//	        -state-dir /var/lib/gz/w0 -checkpoint-interval 30s
//
// On SIGINT/SIGTERM both modes shut down gracefully: the coordinator
// drains its send windows and ships one final checkpoint merge before
// exiting; a worker drains its engine, writes its -state-dir checkpoint
// if durable and, with -final-checkpoint, writes a GZE3 file of its
// final state. Both log their /statsz document on the way out.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphzeppelin/internal/core"
	"graphzeppelin/internal/gzserve"
	"graphzeppelin/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gzserve: ")
	os.Exit(run())
}

func run() int {
	var (
		mode      = flag.String("mode", "", "role: worker or coordinator (required)")
		listen    = flag.String("listen", "127.0.0.1:0", "listen address (port 0 picks a free port)")
		addrFile  = flag.String("addr-file", "", "write the actual listen address to this file once serving (for launchers using port 0)")
		nodes     = flag.Uint("nodes", 0, "node-universe size (required; must match across the cluster)")
		seed      = flag.Uint64("seed", 1, "sketch seed (must match across the cluster)")
		shards    = flag.Int("shards", 0, "engine ingest shards in this process (default: engine default)")
		workerIdx = flag.Int("worker-index", -1, "worker: this worker's partition index (with -worker-count, documents the node range in /v1/info)")
		workerCnt = flag.Int("worker-count", 0, "worker: total workers in the cluster (for -worker-index)")
		finalCkpt = flag.String("final-checkpoint", "", "worker: write a GZE3 checkpoint here on graceful shutdown")
		stateDir  = flag.String("state-dir", "", "worker: durable state directory (checkpoint + write-ahead log); every acked batch survives a crash and the worker auto-recovers from it on startup")
		fsync     = flag.String("fsync", "batch", "worker: WAL fsync policy with -state-dir: batch, interval, off")
		fsyncIntv = flag.Duration("fsync-interval", 0, "worker: WAL sync period for -fsync interval (0 = 50ms default)")
		walSegB   = flag.Int64("wal-segment-bytes", 0, "worker: WAL segment rotation threshold (0 = 8 MiB default)")
		ckptIntv  = flag.Duration("checkpoint-interval", 0, "worker: periodic local checkpoint period with -state-dir (0 = only on shutdown); full checkpoints truncate the covered WAL prefix")
		deltaCkpt = flag.Bool("delta-checkpoints", true, "worker: allow sparse delta checkpoints (local chain files and /v1/checkpoint?since= responses); false seals every checkpoint full")
		deltaThr  = flag.Float64("delta-threshold", 0, "worker: dirty-node fraction above which a seal falls back to a full checkpoint (0 = 0.20 default)")
		deltaChn  = flag.Int("delta-chain", 0, "worker: max delta checkpoint files between fulls in -state-dir (0 = 8 default)")
		workers   = flag.String("workers", "", "coordinator: comma-separated worker base URLs, in partition order (required)")
		batch     = flag.Int("batch", 4096, "coordinator: per-worker dispatch threshold in updates")
		window    = flag.Int("window", 4, "coordinator: max in-flight sends per worker")
		attempts  = flag.Int("attempts", 6, "coordinator: send attempts per batch before giving up")
		mergeIntv = flag.Duration("merge-interval", 0, "coordinator: background checkpoint-merge period (0 = only on /v1/refresh and shutdown)")
		noDeltaRf = flag.Bool("no-delta-refresh", false, "coordinator: disable incremental delta refresh (always pull full checkpoints and rebuild the merged view)")
	)
	flag.Parse()

	if *mode != "worker" && *mode != "coordinator" {
		log.Printf("-mode must be worker or coordinator")
		return 2
	}
	if *nodes < 2 {
		log.Printf("-nodes must be at least 2")
		return 2
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Printf("listen: %v", err)
		return 1
	}
	addr := ln.Addr().String()
	log.Printf("%s listening on %s", *mode, addr)
	if *addrFile != "" {
		// Write to a temp name then rename, so a launcher polling the
		// file never reads a partial address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(addr), 0o644); err != nil {
			log.Printf("addr-file: %v", err)
			return 1
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			log.Printf("addr-file: %v", err)
			return 1
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ecfg := core.Config{NumNodes: uint32(*nodes), Seed: *seed, Shards: *shards}
	ecfg.DeltaCheckpointThreshold = *deltaThr
	if !*deltaCkpt {
		ecfg.DeltaCheckpointThreshold = -1
	}
	switch *mode {
	case "worker":
		var dur gzserve.Durability
		if *stateDir != "" {
			policy, err := wal.ParseFsyncPolicy(*fsync)
			if err != nil {
				log.Printf("worker: %v", err)
				return 2
			}
			dur = gzserve.Durability{
				StateDir:           *stateDir,
				Fsync:              policy,
				FsyncInterval:      *fsyncIntv,
				SegmentBytes:       *walSegB,
				CheckpointInterval: *ckptIntv,
				DeltaThreshold:     ecfg.DeltaCheckpointThreshold,
				MaxDeltaChain:      *deltaChn,
			}
			if !*deltaCkpt {
				dur.MaxDeltaChain = -1
			}
		}
		return runWorker(ctx, ln, ecfg, *workerIdx, *workerCnt, *finalCkpt, dur)
	default:
		return runCoordinator(ctx, ln, ecfg, *workers, *batch, *window, *attempts, *mergeIntv, *noDeltaRf)
	}
}

// serve runs an HTTP server over ln until ctx is cancelled, then shuts
// it down gracefully (in-flight requests finish).
func serve(ctx context.Context, ln net.Listener, h http.Handler) error {
	srv := &http.Server{Handler: h}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}

func logStatsz(role string, v any) {
	doc, err := json.Marshal(v)
	if err != nil {
		log.Printf("%s statsz: %v", role, err)
		return
	}
	log.Printf("%s final statsz: %s", role, doc)
}

func runWorker(ctx context.Context, ln net.Listener, ecfg core.Config, idx, cnt int, finalCkpt string, dur gzserve.Durability) int {
	rangeLo, rangeHi := uint32(0), ecfg.NumNodes
	if idx >= 0 && cnt > 0 {
		part, err := gzserve.NewRangePartitioner(ecfg.NumNodes, cnt)
		if err != nil {
			log.Printf("worker: %v", err)
			return 1
		}
		rangeLo, rangeHi = part.Range(idx)
	}
	var wk *gzserve.Worker
	var err error
	if dur.StateDir != "" {
		var rec *core.Recovery
		wk, rec, err = gzserve.NewDurableWorker(ecfg, rangeLo, rangeHi, dur)
		if err == nil {
			log.Printf("worker: durable state in %s (fsync=%s); recovered %d batches / %d updates from the WAL%s",
				dur.StateDir, dur.Fsync, rec.Records, rec.Updates,
				map[bool]string{true: " (torn tail truncated)", false: ""}[rec.Torn])
		}
	} else {
		wk, err = gzserve.NewWorker(ecfg, rangeLo, rangeHi)
	}
	if err != nil {
		log.Printf("worker: %v", err)
		return 1
	}
	if err := serve(ctx, ln, wk.Handler()); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("worker: serve: %v", err)
		wk.Close()
		return 1
	}

	// Graceful shutdown: the HTTP server has stopped accepting work;
	// drain the engine, optionally ship the final checkpoint, log stats.
	if err := wk.Engine().Drain(); err != nil {
		log.Printf("worker: drain: %v", err)
	}
	if finalCkpt != "" {
		f, err := os.Create(finalCkpt)
		if err == nil {
			err = wk.Engine().WriteCheckpoint(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			log.Printf("worker: final checkpoint: %v", err)
		} else {
			log.Printf("worker: final checkpoint written to %s", finalCkpt)
		}
	}
	logStatsz("worker", wk.Stats())
	if err := wk.Close(); err != nil {
		log.Printf("worker: close: %v", err)
		return 1
	}
	return 0
}

func runCoordinator(ctx context.Context, ln net.Listener, ecfg core.Config, workerList string, batch, window, attempts int, mergeIntv time.Duration, noDeltaRefresh bool) int {
	var addrs []string
	for _, a := range strings.Split(workerList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		log.Printf("coordinator: -workers is required")
		return 2
	}
	co, err := gzserve.NewCoordinator(gzserve.CoordinatorConfig{
		Engine:         ecfg,
		Workers:        addrs,
		BatchSize:      batch,
		Client:         gzserve.ClientConfig{MaxInFlight: window, MaxAttempts: attempts},
		MergeInterval:  mergeIntv,
		NoDeltaRefresh: noDeltaRefresh,
	})
	if err != nil {
		log.Printf("coordinator: %v", err)
		return 1
	}
	log.Printf("coordinator: %d workers, node ranges by %s", len(addrs), describeRanges(ecfg.NumNodes, len(addrs)))
	if err := serve(ctx, ln, co.Handler()); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("coordinator: serve: %v", err)
		co.Close(context.Background())
		return 1
	}

	// Graceful shutdown: drain every send window, pull one final
	// checkpoint from each worker and merge, then report.
	closeCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := co.Close(closeCtx); err != nil {
		log.Printf("coordinator: final merge: %v", err)
		logStatsz("coordinator", co.Stats())
		return 1
	}
	st := co.Stats()
	log.Printf("coordinator: final merge covered %d updates across %d workers", st.LastMergeUpdates, len(addrs))
	logStatsz("coordinator", st)
	return 0
}

func describeRanges(numNodes uint32, k int) string {
	part, err := gzserve.NewRangePartitioner(numNodes, k)
	if err != nil {
		return "?"
	}
	var b strings.Builder
	for i := 0; i < k; i++ {
		lo, hi := part.Range(i)
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "[%d,%d)", lo, hi)
	}
	return b.String()
}
