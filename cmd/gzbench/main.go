// Command gzbench regenerates the paper's evaluation tables and figures on
// this machine. Each -exp value corresponds to one artifact of Section 6;
// "all" runs the full evaluation. See DESIGN.md §4 for the experiment
// index and EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	gzbench -exp fig4
//	gzbench -exp all -max-scale 11 -trials 100
//	gzbench -exp scaling -json BENCH_scaling.json
//	gzbench -exp shards -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"graphzeppelin/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gzbench: ")
	os.Exit(run())
}

// run holds main's body so profile-flush defers execute before the
// process exits with a status code.
func run() int {
	var (
		exp        = flag.String("exp", "all", "experiment: fig4, fig5, table10, fig11, fig12, fig13, fig14, fig15, fig16, query, shards, producers, scaling, cache, distmerge, distserve, refresh, wal, crashrecover, reliability, all")
		maxScale   = flag.Int("max-scale", 10, "largest Kronecker scale for system experiments")
		trials     = flag.Int("trials", 25, "correctness checks per dataset (reliability)")
		seed       = flag.Uint64("seed", 1, "generator/sketch seed")
		quiet      = flag.Bool("q", false, "suppress progress output")
		jsonPath   = flag.String("json", "", "also write results (with host metadata) to this JSON file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		gzserveBin = flag.String("gzserve", "", "path to a gzserve binary; distserve then runs each cluster role as its own process")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Printf("cpuprofile: %v", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Printf("cpuprofile: %v", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer writeHeapProfile(*memProfile)
	}

	o := experiments.Options{
		MaxScale:   *maxScale,
		Trials:     *trials,
		Seed:       *seed,
		Verbose:    !*quiet,
		Progress:   os.Stderr,
		GzserveBin: *gzserveBin,
	}

	type runner func() (*experiments.Table, error)
	all := []struct {
		name string
		run  runner
	}{
		{"fig4", func() (*experiments.Table, error) { return experiments.Fig4(o), nil }},
		{"fig5", func() (*experiments.Table, error) { return experiments.Fig5(o), nil }},
		{"table10", func() (*experiments.Table, error) { return experiments.Table10(o), nil }},
		{"fig11", func() (*experiments.Table, error) { return experiments.Fig11(o) }},
		{"fig12", func() (*experiments.Table, error) { return experiments.Fig12(o) }},
		{"fig13", func() (*experiments.Table, error) { return experiments.Fig13(o) }},
		{"fig14", func() (*experiments.Table, error) { return experiments.Fig14(o) }},
		{"fig15", func() (*experiments.Table, error) { return experiments.Fig15(o) }},
		{"fig16", func() (*experiments.Table, error) { return experiments.Fig16(o) }},
		{"query", func() (*experiments.Table, error) { return experiments.QuerySweep(o) }},
		{"shards", func() (*experiments.Table, error) { return experiments.ShardSweep(o) }},
		{"producers", func() (*experiments.Table, error) { return experiments.ProducerSweep(o) }},
		{"scaling", func() (*experiments.Table, error) { return experiments.ScalingSweep(o) }},
		{"cache", func() (*experiments.Table, error) { return experiments.CacheSweep(o) }},
		{"distmerge", func() (*experiments.Table, error) { return experiments.DistributedMerge(o) }},
		{"distserve", func() (*experiments.Table, error) { return experiments.DistServe(o) }},
		{"refresh", func() (*experiments.Table, error) { return experiments.RefreshSweep(o) }},
		{"wal", func() (*experiments.Table, error) { return experiments.WALOverhead(o) }},
		{"crashrecover", func() (*experiments.Table, error) { return experiments.CrashRecover(o) }},
		{"reliability", func() (*experiments.Table, error) {
			t, _, err := experiments.Reliability(o)
			return t, err
		}},
	}

	want := strings.Split(*exp, ",")
	matched := false
	var tables []*experiments.Table
	failed := ""
	for _, e := range all {
		if !selected(want, e.name) {
			continue
		}
		matched = true
		t, err := e.run()
		if err != nil {
			// Remember the failure but fall through, so profiles and the
			// JSON for already-finished experiments are still written.
			failed = fmt.Sprintf("%s: %v", e.name, err)
			log.Print(failed)
			break
		}
		t.Print(os.Stdout)
		tables = append(tables, t)
	}
	if !matched {
		log.Printf("no experiment matches %q", *exp)
		return 1
	}
	if *jsonPath != "" && len(tables) > 0 {
		if err := writeJSON(*jsonPath, tables, o); err != nil {
			log.Printf("json: %v", err)
			failed = "json write failed"
		}
	}
	if failed != "" {
		return 1
	}
	fmt.Fprintln(os.Stderr, "done")
	return 0
}

func selected(want []string, name string) bool {
	for _, w := range want {
		if w == "all" || strings.TrimSpace(w) == name {
			return true
		}
	}
	return false
}

func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		log.Printf("memprofile: %v", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		log.Printf("memprofile: %v", err)
	}
}

// jsonReport is the machine-readable result format: the host block pins
// the parallelism actually available when the numbers were taken, so
// 1-vCPU results are never mistaken for multi-core ones.
type jsonReport struct {
	Benchmark string `json:"benchmark"`
	Date      string `json:"date"`
	Host      struct {
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		GoVersion  string `json:"go_version"`
		OSArch     string `json:"os_arch"`
	} `json:"host"`
	Options struct {
		MaxScale int    `json:"max_scale"`
		Seed     uint64 `json:"seed"`
	} `json:"options"`
	Tables []jsonTable `json:"tables"`
}

type jsonTable struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

func writeJSON(path string, tables []*experiments.Table, o experiments.Options) error {
	var r jsonReport
	r.Benchmark = "gzbench"
	r.Date = time.Now().UTC().Format("2006-01-02")
	r.Host.NumCPU = runtime.NumCPU()
	r.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	r.Host.GoVersion = runtime.Version()
	r.Host.OSArch = runtime.GOOS + "/" + runtime.GOARCH
	r.Options.MaxScale = o.MaxScale
	r.Options.Seed = o.Seed
	for _, t := range tables {
		r.Tables = append(r.Tables, jsonTable{
			ID: t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows, Notes: t.Notes,
		})
	}
	out, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
