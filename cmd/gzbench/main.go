// Command gzbench regenerates the paper's evaluation tables and figures on
// this machine. Each -exp value corresponds to one artifact of Section 6;
// "all" runs the full evaluation. See DESIGN.md §4 for the experiment
// index and EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	gzbench -exp fig4
//	gzbench -exp all -max-scale 11 -trials 100
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"graphzeppelin/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gzbench: ")
	var (
		exp      = flag.String("exp", "all", "experiment: fig4, fig5, table10, fig11, fig12, fig13, fig14, fig15, fig16, query, shards, producers, cache, distmerge, reliability, all")
		maxScale = flag.Int("max-scale", 10, "largest Kronecker scale for system experiments")
		trials   = flag.Int("trials", 25, "correctness checks per dataset (reliability)")
		seed     = flag.Uint64("seed", 1, "generator/sketch seed")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	o := experiments.Options{
		MaxScale: *maxScale,
		Trials:   *trials,
		Seed:     *seed,
		Verbose:  !*quiet,
		Progress: os.Stderr,
	}

	type runner func() (*experiments.Table, error)
	all := []struct {
		name string
		run  runner
	}{
		{"fig4", func() (*experiments.Table, error) { return experiments.Fig4(o), nil }},
		{"fig5", func() (*experiments.Table, error) { return experiments.Fig5(o), nil }},
		{"table10", func() (*experiments.Table, error) { return experiments.Table10(o), nil }},
		{"fig11", func() (*experiments.Table, error) { return experiments.Fig11(o) }},
		{"fig12", func() (*experiments.Table, error) { return experiments.Fig12(o) }},
		{"fig13", func() (*experiments.Table, error) { return experiments.Fig13(o) }},
		{"fig14", func() (*experiments.Table, error) { return experiments.Fig14(o) }},
		{"fig15", func() (*experiments.Table, error) { return experiments.Fig15(o) }},
		{"fig16", func() (*experiments.Table, error) { return experiments.Fig16(o) }},
		{"query", func() (*experiments.Table, error) { return experiments.QuerySweep(o) }},
		{"shards", func() (*experiments.Table, error) { return experiments.ShardSweep(o) }},
		{"producers", func() (*experiments.Table, error) { return experiments.ProducerSweep(o) }},
		{"cache", func() (*experiments.Table, error) { return experiments.CacheSweep(o) }},
		{"distmerge", func() (*experiments.Table, error) { return experiments.DistributedMerge(o) }},
		{"reliability", func() (*experiments.Table, error) {
			t, _, err := experiments.Reliability(o)
			return t, err
		}},
	}

	want := strings.Split(*exp, ",")
	matched := false
	for _, e := range all {
		if !selected(want, e.name) {
			continue
		}
		matched = true
		t, err := e.run()
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		t.Print(os.Stdout)
	}
	if !matched {
		log.Fatalf("no experiment matches %q", *exp)
	}
	fmt.Fprintln(os.Stderr, "done")
}

func selected(want []string, name string) bool {
	for _, w := range want {
		if w == "all" || strings.TrimSpace(w) == name {
			return true
		}
	}
	return false
}
