package graphzeppelin

// IngestorBufferSize is the capacity, in updates, of an Ingestor's
// private buffer: large enough that the per-flush costs (the engine's
// read-lock, gutter stripe locking, scratch recycling) amortize to
// nothing per update, small enough that a producer's updates reach the
// shared pipeline promptly.
const IngestorBufferSize = 512

// Ingestor is a per-producer ingestion session: a handle with a private
// fixed-size update buffer that flushes into the Graph's multi-producer
// buffering layer as it fills. Create one Ingestor per producer goroutine
// with Graph.NewIngestor; any number of ingestors may run concurrently,
// and the Graph's own Apply/ApplyBatch may be called alongside them.
//
// An Ingestor itself is NOT safe for concurrent use — it is owned by one
// producer, which is exactly what lets its buffer stay unsynchronized
// (the sessions pattern: share the Graph, not the session). Buffered
// updates become visible to queries after the next Flush (implicit when
// the buffer fills, explicit via Flush, final via Close); a query on the
// Graph only reflects updates from ingestors that have flushed them.
//
// After Close — the ingestor's own or the Graph's — every method returns
// ErrClosed.
type Ingestor struct {
	g      *Graph
	buf    []Update
	closed bool
}

// NewIngestor opens an ingestion session on the Graph. Returns ErrClosed
// if the Graph has been closed.
func (g *Graph) NewIngestor() (*Ingestor, error) {
	if g.engine.Closed() {
		return nil, ErrClosed
	}
	return &Ingestor{g: g, buf: make([]Update, 0, IngestorBufferSize)}, nil
}

// err reports ErrClosed once either the session or its Graph is closed.
func (i *Ingestor) err() error {
	if i.closed || i.g.engine.Closed() {
		return ErrClosed
	}
	return nil
}

// Apply buffers one stream update, flushing the session's buffer into the
// Graph when it fills. Edge validity is checked immediately (by the same
// engine rule flushing would apply, so a buffered update can never be
// rejected later); stream well-formedness checking (EnableValidation)
// runs when the update reaches the Graph at flush time.
func (i *Ingestor) Apply(u Update) error {
	if err := i.err(); err != nil {
		return err
	}
	if err := i.g.engine.CheckEdge(u.Edge); err != nil {
		return err
	}
	i.buf = append(i.buf, u)
	if len(i.buf) == cap(i.buf) {
		return i.Flush()
	}
	return nil
}

// Insert buffers the insertion of edge (u, v).
func (i *Ingestor) Insert(u, v uint32) error {
	return i.Apply(Update{Edge: Edge{U: u, V: v}, Type: Insert})
}

// Delete buffers the deletion of edge (u, v). The edge must currently be
// present (the streaming-model contract).
func (i *Ingestor) Delete(u, v uint32) error {
	return i.Apply(Update{Edge: Edge{U: u, V: v}, Type: Delete})
}

// ApplyBatch ingests a batch of updates. Batches at least as large as the
// session buffer bypass it (after flushing what is buffered, preserving
// order within this session) and go straight down the Graph's bulk path.
func (i *Ingestor) ApplyBatch(ups []Update) error {
	if err := i.err(); err != nil {
		return err
	}
	if len(ups) >= cap(i.buf) {
		if err := i.Flush(); err != nil {
			return err
		}
		return i.g.ApplyBatch(ups)
	}
	for _, u := range ups {
		if err := i.Apply(u); err != nil {
			return err
		}
	}
	return nil
}

// InsertBatch ingests a batch of edge insertions; like ApplyBatch, large
// batches bypass the session buffer.
func (i *Ingestor) InsertBatch(edges []Edge) error {
	if err := i.err(); err != nil {
		return err
	}
	if len(edges) >= cap(i.buf) {
		if err := i.Flush(); err != nil {
			return err
		}
		return i.g.InsertBatch(edges)
	}
	for _, e := range edges {
		if err := i.Apply(Update{Edge: e, Type: Insert}); err != nil {
			return err
		}
	}
	return nil
}

// Flush pushes the session's buffered updates into the Graph's buffering
// layer (it does not force them all the way into the sketches — that is
// Graph.Flush). On error the buffered updates are dropped rather than
// retried, so a later Flush cannot double-ingest them.
func (i *Ingestor) Flush() error {
	if err := i.err(); err != nil {
		return err
	}
	if len(i.buf) == 0 {
		return nil
	}
	err := i.g.ApplyBatch(i.buf)
	i.buf = i.buf[:0]
	return err
}

// Buffered returns the number of updates waiting in the session buffer.
func (i *Ingestor) Buffered() int { return len(i.buf) }

// Close flushes the session's remaining updates and ends it. Afterwards
// every method, including Close itself, returns ErrClosed.
func (i *Ingestor) Close() error {
	if i.closed {
		return ErrClosed
	}
	err := i.Flush()
	i.closed = true
	return err
}
